"""The fleet survey runner.

:class:`SurveyRunner` drives the §III experiment at fleet scale: it walks a
deterministically seeded fleet (same seeds as
:func:`repro.platform.fleet.iter_fleet`), maps every instance with the full
three-step pipeline, and tabulates pattern diversity and reconstruction
accuracy.

Four properties make it a *survey engine* rather than a loop:

* **PPIN-keyed caching** — before paying for generation and mapping, the
  runner derives the PPIN each fleet slot *would* carry
  (:meth:`~repro.platform.instance.CpuInstance.ppin_for`) and skips slots
  whose map is already in the :class:`~repro.store.database.MapDatabase`.
  Re-running a finished survey touches no counters at all. Fresh maps are
  flushed to disk every ``flush_every`` records, so a crash mid-survey
  loses at most one flush window of work.
* **Worker-pool fan-out** — with ``workers > 1`` uncached slots are mapped
  in a :class:`~concurrent.futures.ProcessPoolExecutor`. The parent builds
  each slot's machine once, snapshots it (:mod:`repro.sim.snapshot`), and
  ships the snapshots plus its live perf flags to every worker through the
  pool initializer (:class:`_FleetShared`); workers unpickle instead of
  rebuilding and return plain-dict records, so results are bit-identical
  to a serial run.
* **Failure isolation** — with ``keep_going=True`` a slot that keeps
  failing becomes a ``failed`` :class:`InstanceOutcome` carrying its error
  class and attempt count instead of aborting the fleet. Every slot gets a
  bounded retry budget with jittered exponential backoff, an optional
  per-slot timeout (pool mode), and a dead worker (``BrokenProcessPool``)
  only costs a serial re-dispatch of the affected shard. A
  :class:`~repro.survey.budget.FailureBudget` bounds how many terminal
  failures a survey absorbs before aborting cleanly.
* **Stage timing aggregation** — every mapped instance's
  :class:`~repro.core.pipeline.StageTimings` is folded into per-stage
  aggregates on the report, alongside retry/failure statistics.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.coremap import CoreMap
from repro.core.errors import SlotTimeoutError, SurveyAbortedError
from repro.core.pipeline import MappingConfig, StageTimings, map_cpu
from repro.faults.machine import inject_faults
from repro.faults.plan import FaultSpec
from repro.perf import FLAGS, set_flags
from repro.platform.fleet import instance_seed
from repro.platform.instance import CpuInstance
from repro.platform.skus import SKU_CATALOG, SkuSpec
from repro.sim.snapshot import machine_from_snapshot, machine_snapshot, restore_machine
from repro.sim.workload import NoiseConfig
from repro.store.database import MapDatabase
from repro.store.serialization import mapping_record, record_core_map
from repro.telemetry.aggregate import SpanAggregate, aggregate_spans
from repro.telemetry.tracer import NULL_TRACER, TelemetrySnapshot, Tracer
from repro.survey.budget import FailureBudget
from repro.util.rng import derive_rng

#: Stage label → StageTimings field, in pipeline order.
STAGE_FIELDS: tuple[tuple[str, str], ...] = (
    ("cha_mapping", "cha_mapping_seconds"),
    ("probe", "probe_seconds"),
    ("solve", "solve_seconds"),
)


def aggregate_timings(timings) -> dict[str, SpanAggregate]:
    """Fold per-instance stage timings into one aggregate per stage.

    Returns an empty dict when no timings are supplied (e.g. a survey that
    was served entirely from the PPIN cache).
    """
    from repro.telemetry.aggregate import SpanAggregator

    aggregator = SpanAggregator()
    for t in timings:
        for stage, field_name in STAGE_FIELDS:
            aggregator.add(stage, getattr(t, field_name))
    return aggregator.stats()

#: MappingConfig fields a worker job carries. ``solver`` crosses the pool
#: only as a registry *name* (each worker builds its own backend); solver
#: objects may hold unpicklable state and stay single-process.
_CONFIG_FIELDS = (
    "home_discovery_rounds",
    "colocation_sweeps",
    "probe_rounds",
    "l2_set",
    "reduce_ilp",
    "solver",
    "batched",
    "retry",
)


def _config_kwargs(config: MappingConfig) -> dict[str, Any]:
    return {name: getattr(config, name) for name in _CONFIG_FIELDS}


def _id_mapping(os_to_cha: dict[int, int]) -> tuple[int, ...]:
    """The Table-I identity of one instance: CHA IDs in OS-core order."""
    return tuple(os_to_cha[os] for os in sorted(os_to_cha))


@dataclass(frozen=True)
class _SlotJob:
    """One uncached fleet slot, as plain picklable data.

    Carries the *resolved* :class:`SkuSpec` — the runner resolves the SKU
    once per survey and workers never consult the catalog again.
    """

    sku: SkuSpec
    index: int
    inst_seed: int
    machine_seed: int
    ppin: int
    config_kwargs: dict[str, Any]
    noise_kwargs: dict[str, Any] | None = None
    fault_kwargs: dict[str, Any] | None = None
    attempt: int = 1
    #: Collect a per-slot telemetry snapshot and ship it back to the parent.
    trace: bool = False

    def on_attempt(self, attempt: int) -> "_SlotJob":
        return _SlotJob(
            self.sku,
            self.index,
            self.inst_seed,
            self.machine_seed,
            self.ppin,
            self.config_kwargs,
            self.noise_kwargs,
            self.fault_kwargs,
            attempt,
            self.trace,
        )


@dataclass(frozen=True)
class _FleetShared:
    """Per-survey state shipped to every pool worker exactly once.

    ``flags`` replays the parent's :data:`repro.perf.FLAGS` so a fleet run
    honours whatever the parent configured (legacy-path benches included);
    ``snapshots`` maps fleet slot index → pickled machine bytes built by
    the parent, so workers restore instead of rebuilding.
    """

    flags: dict[str, bool]
    snapshots: dict[int, bytes]


#: Set by :func:`_init_worker` inside pool workers; ``None`` in the parent.
_WORKER_SHARED: _FleetShared | None = None


def _init_worker(shared: _FleetShared) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = shared
    set_flags(**shared.flags)


def _job_machine(job: _SlotJob):
    """The slot's machine: restored from a snapshot wherever one exists."""
    shared = _WORKER_SHARED
    if shared is not None:
        data = shared.snapshots.get(job.index)
        if data is not None:
            return restore_machine(data)
    # Serial path (and fallback): the process-local snapshot cache makes
    # retries and repeated surveys restore instead of rebuilding.
    return machine_from_snapshot(job.sku, job.inst_seed, job.machine_seed, job.noise_kwargs)


def _map_one(job: _SlotJob) -> dict[str, Any]:
    """Map one fleet slot. Module-level so the process pool can pickle it.

    Returns only plain data — the mapping record, timings, and ground-truth
    verdict — never live machine objects.
    """
    machine = _job_machine(job)
    instance = machine.instance
    # Telemetry is process-local; the snapshot crosses the pool boundary as
    # plain dicts and is merged into the parent tracer per slot.
    tracer = Tracer() if job.trace else NULL_TRACER
    with tracer.span("survey_slot", slot=job.index, attempt=job.attempt):
        if job.fault_kwargs is not None:
            machine = inject_faults(
                machine, FaultSpec.from_dict(job.fault_kwargs), job.attempt, tracer=tracer
            )
            machine.maybe_crash()
        result = map_cpu(machine, config=MappingConfig(**job.config_kwargs), tracer=tracer)

    truth = CoreMap.from_instance(instance)
    located = frozenset(result.core_map.cha_positions)
    return {
        "index": job.index,
        "ppin": result.ppin,
        "record": mapping_record(result),
        "timings": result.timings.as_dict(),
        "probe_count": result.probe_count,
        "matches_truth": bool(result.core_map.equivalent(truth.restricted_to(located))),
        "id_mapping": _id_mapping(result.cha_mapping.os_to_cha),
        "attempts": job.attempt,
        "pipeline_retries": result.retry_attempts,
        "dropped_observations": result.dropped_observations,
        "telemetry": tracer.snapshot().as_dict() if job.trace else None,
    }


@dataclass(frozen=True)
class InstanceOutcome:
    """One fleet slot's survey result."""

    sku: str
    index: int
    ppin: int
    #: True when the map came from the PPIN database, not a pipeline run.
    cached: bool
    #: The recovered map (None when the slot failed).
    core_map: CoreMap | None
    id_mapping: tuple[int, ...]
    #: Reconstruction vs hidden ground truth (None when not verified).
    matches_truth: bool | None
    #: Per-stage wall clock of the pipeline run (None for cache hits).
    timings: StageTimings | None
    #: Step-2 traffic probes executed (0 for cache hits).
    probe_count: int
    #: True when every dispatch attempt for this slot failed.
    failed: bool = False
    #: True when the slot was quarantined instead of dispatched: it killed
    #: its worker so many times (across supervisor takeovers) that mapping
    #: it again would just murder the next owner too. Poisoned slots are
    #: ``failed`` but never count against the shard's failure budget.
    poisoned: bool = False
    #: Exception class name of the final failure (None on success).
    error: str | None = None
    error_message: str | None = None
    #: Slot-level dispatch attempts consumed (1 = first try succeeded).
    attempts: int = 1
    #: Stage retries the pipeline's RetryPolicy spent inside the run.
    pipeline_retries: int = 0

    @property
    def recovered(self) -> bool:
        """Succeeded, but only after a retry somewhere in the stack."""
        return not self.failed and not self.cached and (
            self.attempts > 1 or self.pipeline_retries > 0
        )


@dataclass
class SurveyReport:
    """Aggregated outcome of surveying one SKU's fleet."""

    sku: str
    outcomes: list[InstanceOutcome]
    wall_seconds: float
    id_mappings: Counter = field(default_factory=Counter)
    patterns: Counter = field(default_factory=Counter)
    #: Merged fleet telemetry (None when the survey ran untraced).
    telemetry: TelemetrySnapshot | None = None
    #: True when a graceful drain stopped the survey before every slot was
    #: dispatched (the undispatched slots are simply absent from
    #: ``outcomes``; a resume picks them up).
    drained: bool = False

    def __post_init__(self) -> None:
        if not self.id_mappings and not self.patterns:
            for outcome in self.outcomes:
                if outcome.failed:
                    continue
                self.id_mappings[outcome.id_mapping] += 1
                self.patterns[outcome.core_map.canonical_key()] += 1

    # -- aggregates ---------------------------------------------------------------
    @property
    def n_instances(self) -> int:
        return len(self.outcomes)

    @property
    def n_cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.failed and not o.poisoned)

    @property
    def n_poisoned(self) -> int:
        return sum(1 for o in self.outcomes if o.poisoned)

    @property
    def n_mapped(self) -> int:
        return self.n_instances - self.n_cached - self.n_failed - self.n_poisoned

    @property
    def n_recovered(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered)

    @property
    def total_attempts(self) -> int:
        return sum(o.attempts for o in self.outcomes)

    @property
    def n_matching_truth(self) -> int:
        return sum(1 for o in self.outcomes if o.matches_truth)

    @property
    def total_probes(self) -> int:
        return sum(o.probe_count for o in self.outcomes)

    @property
    def instances_per_minute(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_instances * 60.0 / self.wall_seconds

    def failed_outcomes(self) -> list[InstanceOutcome]:
        return [o for o in self.outcomes if o.failed]

    def failure_classes(self) -> Counter:
        """Error class → count over the failed (not poisoned) slots."""
        return Counter(o.error for o in self.outcomes if o.failed and not o.poisoned)

    def stage_aggregates(self) -> dict[str, SpanAggregate]:
        """Per-§II-stage timing over the instances actually mapped."""
        return aggregate_timings(o.timings for o in self.outcomes if o.timings is not None)

    def span_aggregates(self) -> dict[str, SpanAggregate]:
        """Fleet-wide per-span-name rollup of the merged telemetry.

        Finer-grained than :meth:`stage_aggregates`: every traced span name
        (``home_discovery``, ``ilp_solve``, …) appears, not just the three
        top-level stages. Empty when the survey ran untraced.
        """
        if self.telemetry is None:
            return {}
        return aggregate_spans(self.telemetry.spans)


class SurveyRunner:
    """Maps a seeded fleet, reusing cached maps and fanning out workers."""

    def __init__(
        self,
        db: MapDatabase | None = None,
        workers: int = 1,
        root_seed: int = 0,
        config: MappingConfig | None = None,
        verify_truth: bool = True,
        clamp_to_cpus: bool = True,
        noise: NoiseConfig | None = None,
        faults: dict[int, FaultSpec] | None = None,
        keep_going: bool = False,
        max_failures: int | None = None,
        failure_budget: FailureBudget | None = None,
        slot_attempts: int = 2,
        backoff_seconds: float = 0.0,
        backoff_max_seconds: float = 30.0,
        slot_timeout: float | None = None,
        flush_every: int = 8,
        tracer: Tracer | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if slot_attempts < 1:
            raise ValueError("slot_attempts must be >= 1")
        if backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if backoff_max_seconds <= 0:
            raise ValueError("backoff_max_seconds must be positive")
        if slot_timeout is not None and slot_timeout <= 0:
            raise ValueError("slot_timeout must be positive")
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be non-negative")
        if max_failures is not None and failure_budget is not None:
            raise ValueError("pass either max_failures or failure_budget, not both")
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.db = db
        self.workers = workers
        self.root_seed = root_seed
        self.config = config or MappingConfig()
        if (
            workers > 1
            and self.config.solver is not None
            and not isinstance(self.config.solver, str)
        ):
            raise ValueError(
                "custom solver objects cannot cross the worker pool; "
                "pass a registry name (e.g. 'portfolio') instead"
            )
        self.verify_truth = verify_truth
        #: Cap the pool at the CPUs actually available — extra CPU-bound
        #: workers on an oversubscribed host only add fork/IPC overhead.
        #: Disable to force the pool path regardless (used by tests).
        self.clamp_to_cpus = clamp_to_cpus
        #: Simulated co-tenant noise level of every surveyed machine.
        self.noise = noise
        #: Optional fault plan: fleet slot index → spec (chaos drills).
        self.faults = faults or {}
        #: Produce ``failed`` outcomes instead of raising.
        self.keep_going = keep_going
        #: Failure budget of one survey/shard; ``max_failures`` is the
        #: legacy absolute-only spelling and builds the same budget.
        if failure_budget is None:
            failure_budget = FailureBudget(max_failures=max_failures)
        self.failure_budget = failure_budget
        #: Bounded retry budget per slot (first dispatch included).
        self.slot_attempts = slot_attempts
        #: Base of the jittered exponential backoff between attempts.
        self.backoff_seconds = backoff_seconds
        #: Hard ceiling on any single backoff sleep.
        self.backoff_max_seconds = backoff_max_seconds
        #: Full-jitter draws come from a seeded stream so retry schedules
        #: are reproducible for a given root seed.
        self._backoff_rng = derive_rng(root_seed, "survey-backoff")
        #: Per-slot wall-clock budget (enforced on the pool path).
        self.slot_timeout = slot_timeout
        #: Persist the database after every N fresh maps.
        self.flush_every = flush_every
        #: Fleet-level tracer; slots collect local snapshots that are merged
        #: here (re-keyed span IDs, ``slot=`` attribute stamped on roots).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = bool(getattr(self.tracer, "enabled", False))

    def _pool_size(self, n_jobs: int) -> int:
        size = min(self.workers, n_jobs)
        if self.clamp_to_cpus:
            try:
                available = len(os.sched_getaffinity(0))
            except AttributeError:  # non-Linux
                available = os.cpu_count() or 1
            size = min(size, available)
        return size

    # -- fleet walking -----------------------------------------------------------
    def _resolve_sku(self, sku: SkuSpec | str) -> SkuSpec:
        if isinstance(sku, str):
            spec = SKU_CATALOG.get(sku)
            if spec is None:
                raise KeyError(f"unknown SKU {sku!r}; choose from {sorted(SKU_CATALOG)}")
            return spec
        return sku

    def _cached_outcome(self, sku: SkuSpec, index: int, inst_seed: int, ppin: int) -> InstanceOutcome:
        record = self.db.record(ppin)
        core_map = record_core_map(record)
        os_to_cha = {int(os): int(cha) for os, cha in record["cha_mapping"]["os_to_cha"].items()}
        matches: bool | None = None
        if self.verify_truth:
            # Regenerating the instance replays no probes — ground truth is
            # fixed by the seed, so cache hits stay verifiable for free.
            truth = CoreMap.from_instance(CpuInstance.generate(sku, inst_seed))
            located = frozenset(core_map.cha_positions)
            matches = bool(core_map.equivalent(truth.restricted_to(located)))
        return InstanceOutcome(
            sku=sku.name,
            index=index,
            ppin=ppin,
            cached=True,
            core_map=core_map,
            id_mapping=_id_mapping(os_to_cha),
            matches_truth=matches,
            timings=None,
            probe_count=0,
        )

    # -- slot execution with isolation -------------------------------------------
    def _backoff(self, attempt: int) -> None:
        """Sleep before (1-based) dispatch ``attempt`` — bounded full jitter.

        The sleep is drawn uniformly from ``[0, min(base * 2^(attempt-2),
        backoff_max_seconds)]`` (AWS-style full jitter). After a pool crash
        every affected slot retries serially; without jitter they would all
        re-dispatch in lockstep and hammer whatever shared resource killed
        the pool. The draw comes from a root-seeded stream, so the schedule
        is reproducible in tests.
        """
        if self.backoff_seconds > 0 and attempt > 1:
            ceiling = min(
                self.backoff_seconds * 2 ** (attempt - 2), self.backoff_max_seconds
            )
            time.sleep(ceiling * float(self._backoff_rng.random()))

    def _failure_raw(self, job: _SlotJob, exc: BaseException, attempts: int) -> dict[str, Any]:
        return {
            "index": job.index,
            "ppin": job.ppin,
            "failed": True,
            "error": type(exc).__name__,
            "error_message": str(exc),
            "attempts": attempts,
            "exception": exc,
        }

    def _retry_serially(
        self, job: _SlotJob, first_error: BaseException, next_attempt: int
    ) -> dict[str, Any]:
        """Burn the remaining attempt budget of one slot in-process."""
        last: BaseException = first_error
        for attempt in range(next_attempt, self.slot_attempts + 1):
            self._backoff(attempt)
            try:
                return _map_one(job.on_attempt(attempt))
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                last = exc
        return self._failure_raw(job, last, max(next_attempt - 1, self.slot_attempts))

    def _run_slot_serial(self, job: _SlotJob) -> dict[str, Any]:
        try:
            return _map_one(job)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            return self._retry_serially(job, exc, next_attempt=2)

    def _iter_jobs(self, jobs: list[_SlotJob], stop=None, slot_started=None):
        """Yield each slot's raw result as it completes, isolating failures.

        ``stop`` is the graceful-drain check: polled before every serial
        dispatch and every pool harvest. Once it returns True no *new*
        work starts — the slot in flight finishes normally (a drain must
        leave a journal-consistent store, and an interrupted slot would
        just be re-run on resume anyway), queued futures are cancelled,
        and pending serial retries are skipped (the resume re-dispatches
        those slots from scratch). ``slot_started`` is called with the
        slot index right before each serial dispatch — the supervisor's
        heartbeat layer uses it to stamp ``current_slot`` on the lease so
        worker deaths can be attributed to the slot that killed them. It
        is *not* called on the pool path, where up to ``workers`` slots
        are in flight at once and no single index is "current".

        Timeout semantics on the pool path: ``future.cancel()`` can only
        stop a slot still *queued*; a slot already running on a worker
        cannot be interrupted — the timed-out job is abandoned and the
        worker keeps burning its pool slot until the stuck workload
        returns (a *leaked* slot, counted in the
        ``survey_slots_leaked_total`` telemetry counter). Once the leaked
        slots would consume every worker the pool is effectively dead, so
        it is recycled: done results are harvested, the rest of the shard
        is resubmitted to a fresh pool, and the stuck pool is shut down
        without waiting for its zombies.
        """
        pool_size = self._pool_size(len(jobs))
        if pool_size <= 1:
            for job in jobs:
                if stop is not None and stop():
                    return
                if slot_started is not None:
                    slot_started(job.index)
                yield self._run_slot_serial(job)
            return

        # Build every slot's machine once here in the parent; workers get
        # the snapshots (and the parent's perf flags) via the initializer.
        shared = _FleetShared(
            flags=dict(FLAGS.as_dict()),
            snapshots={
                job.index: machine_snapshot(
                    job.sku, job.inst_seed, job.machine_seed, job.noise_kwargs
                )
                for job in jobs
            },
        )
        c_leaked = self.tracer.counter("survey_slots_leaked_total")
        retry_queue: list[tuple[_SlotJob, BaseException]] = []
        pending = list(jobs)
        while pending:
            pool = ProcessPoolExecutor(
                max_workers=pool_size, initializer=_init_worker, initargs=(shared,)
            )
            futures = [(job, pool.submit(_map_one, job)) for job in pending]
            pending = []
            leaked = 0
            pool_broken = False
            draining = False
            recycle_from: int | None = None
            for pos, (job, future) in enumerate(futures):
                if not draining and stop is not None and stop():
                    draining = True
                if draining and future.cancel():
                    # Never started — the resume re-dispatches this slot.
                    continue
                if pool_broken:
                    # The pool died; whatever did not finish re-runs serially.
                    if future.done() and future.exception() is None:
                        yield future.result()
                    else:
                        retry_queue.append(
                            (job, BrokenProcessPool("worker pool died mid-survey"))
                        )
                    continue
                try:
                    yield future.result(timeout=self.slot_timeout)
                except BrokenProcessPool as exc:
                    pool_broken = True
                    retry_queue.append((job, exc))
                except FutureTimeoutError:
                    if not future.cancel():
                        # Already running: the worker is unreclaimable until
                        # the stuck workload returns — a leaked pool slot.
                        leaked += 1
                        c_leaked.inc()
                    retry_queue.append(
                        (
                            job,
                            SlotTimeoutError(
                                f"slot {job.index} exceeded {self.slot_timeout}s"
                            ),
                        )
                    )
                    if leaked >= pool_size:
                        recycle_from = pos + 1
                        break
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    retry_queue.append((job, exc))
            if recycle_from is not None:
                for job, future in futures[recycle_from:]:
                    if future.done() and future.exception() is None:
                        yield future.result()
                    else:
                        future.cancel()
                        pending.append(job)
            # Don't block on leaked workers — their results are abandoned
            # and their processes exit on their own once the stall clears.
            pool.shutdown(wait=leaked == 0, cancel_futures=True)
            if draining:
                return
        for job, first_error in retry_queue:
            if stop is not None and stop():
                # Draining: pending retries are abandoned, not failed —
                # their slots stay unjournaled and re-dispatch on resume.
                return
            yield self._retry_serially(job, first_error, next_attempt=2)

    # -- survey -------------------------------------------------------------------
    def survey(self, sku: SkuSpec | str, n_instances: int) -> SurveyReport:
        """Map ``n_instances`` fleet slots of ``sku`` and aggregate."""
        if n_instances < 0:
            raise ValueError("n_instances must be non-negative")
        return self.survey_slots(sku, range(n_instances))

    def survey_slots(
        self,
        sku: SkuSpec | str,
        slot_indices,
        *,
        raw_sink=None,
        prior_failures: Counter | None = None,
        planned_total: int | None = None,
        quarantined: Mapping[int, str] | None = None,
        stop: Callable[[], bool] | None = None,
        slot_started: Callable[[int], None] | None = None,
    ) -> SurveyReport:
        """Map an explicit set of global fleet slots (a shard's work range).

        ``slot_indices`` are *global* fleet indices: each slot's instance
        and machine seeds derive from its global index, so any partition of
        the fleet — ``range(n)``, a shard's stripe, a resume's leftovers —
        maps every slot bit-identically to an unsharded run.

        ``raw_sink`` is called with each slot's raw result dict the moment
        it is processed (successes *and* terminal failures); the sharded
        survey service uses it to journal and persist durably per slot.
        ``prior_failures``/``planned_total`` seed the failure-budget
        accounting on resumed shards so the budget covers the shard's whole
        lifetime, not just the current process.

        ``quarantined`` maps slot indices to quarantine reasons: those
        slots are *never dispatched* — each becomes a ``poisoned`` outcome
        (routed through ``raw_sink`` like any terminal result) that counts
        neither against the failure budget nor as a mapping failure. The
        fleet supervisor quarantines a slot once it has crashed enough
        workers that dispatching it again would only kill the next owner.

        ``stop`` enables graceful drain: polled between dispatches; once
        true, the in-flight slot finishes, nothing new starts, and the
        report comes back with ``drained=True`` (the skipped slots simply
        never reach ``raw_sink``, so a journal-driven resume re-dispatches
        exactly them). ``slot_started`` fires with the slot index before
        each serial dispatch (heartbeat ``current_slot`` stamping).
        """
        sku = self._resolve_sku(sku)
        slots = [int(index) for index in slot_indices]
        if any(index < 0 for index in slots):
            raise ValueError("slot indices must be non-negative")
        quarantined = dict(quarantined or {})
        started = time.perf_counter()
        c_cache_hits = self.tracer.counter("survey_cache_hits_total")
        slot_counter = lambda outcome: self.tracer.counter(  # noqa: E731
            "survey_slots_total", outcome=outcome
        )
        failure_classes: Counter = Counter(prior_failures or ())
        n_failed = sum(failure_classes.values())
        n_dispatched = n_failed
        n_planned = planned_total if planned_total is not None else len(slots) + n_failed

        with self.tracer.span("survey", sku=sku.name, n_instances=len(slots)):
            cached: list[InstanceOutcome] = []
            jobs: list[_SlotJob] = []
            config_kwargs = _config_kwargs(self.config)
            noise_kwargs = self.noise.__dict__.copy() if self.noise is not None else None
            poisoned_raws: list[dict[str, Any]] = []
            for index in slots:
                inst_seed = instance_seed(self.root_seed, sku, index)
                ppin = CpuInstance.ppin_for(sku, inst_seed)
                if self.db is not None and ppin in self.db:
                    cached.append(self._cached_outcome(sku, index, inst_seed, ppin))
                    c_cache_hits.inc()
                    slot_counter("cached").inc()
                elif index in quarantined:
                    # Quarantined: never dispatched, recorded as poisoned.
                    poisoned_raws.append(
                        {
                            "index": index,
                            "ppin": ppin,
                            "failed": True,
                            "poisoned": True,
                            "error": "PoisonedSlot",
                            "error_message": quarantined[index],
                            "attempts": 0,
                        }
                    )
                else:
                    # Machine seed = fleet index, matching the serial survey
                    # example, so cached and fresh runs agree bit for bit.
                    spec = self.faults.get(index)
                    jobs.append(
                        _SlotJob(
                            sku=sku,
                            index=index,
                            inst_seed=inst_seed,
                            machine_seed=index,
                            ppin=ppin,
                            config_kwargs=config_kwargs,
                            noise_kwargs=noise_kwargs,
                            fault_kwargs=spec.as_dict() if spec is not None else None,
                            trace=self._tracing,
                        )
                    )

            fresh: list[InstanceOutcome] = []
            for raw in poisoned_raws:
                slot_counter("poisoned").inc()
                if raw_sink is not None:
                    raw_sink(raw)
                fresh.append(
                    InstanceOutcome(
                        sku=sku.name,
                        index=raw["index"],
                        ppin=raw["ppin"],
                        cached=False,
                        core_map=None,
                        id_mapping=(),
                        matches_truth=None,
                        timings=None,
                        probe_count=0,
                        failed=True,
                        poisoned=True,
                        error=raw["error"],
                        error_message=raw["error_message"],
                        attempts=0,
                    )
                )

            pending_flush = 0
            stored_any = False
            n_raws = 0
            for raw in self._iter_jobs(jobs, stop=stop, slot_started=slot_started):
                n_raws += 1
                n_dispatched += 1
                if self._tracing and raw.get("telemetry") is not None:
                    # Slot snapshots merge under the open survey span, each
                    # root stamped with the fleet slot it came from.
                    self.tracer.merge(
                        TelemetrySnapshot.from_dict(raw["telemetry"]), slot=raw["index"]
                    )
                if raw.get("failed"):
                    n_failed += 1
                    failure_classes[raw["error"]] += 1
                    slot_counter("failed").inc()
                    if not self.keep_going:
                        raise raw["exception"]
                    reason = self.failure_budget.tripped(
                        n_failed, n_dispatched, n_planned, failure_classes
                    )
                    if reason is not None:
                        raise SurveyAbortedError(
                            f"survey aborted: {reason} "
                            f"(last: {raw['error']}: {raw['error_message']})"
                        )
                    if raw_sink is not None:
                        raw_sink(raw)
                    fresh.append(
                        InstanceOutcome(
                            sku=sku.name,
                            index=raw["index"],
                            ppin=raw["ppin"],
                            cached=False,
                            core_map=None,
                            id_mapping=(),
                            matches_truth=None,
                            timings=None,
                            probe_count=0,
                            failed=True,
                            error=raw["error"],
                            error_message=raw["error_message"],
                            attempts=raw["attempts"],
                        )
                    )
                    continue
                slot_counter("mapped").inc()
                fresh.append(
                    InstanceOutcome(
                        sku=sku.name,
                        index=raw["index"],
                        ppin=raw["ppin"],
                        cached=False,
                        core_map=record_core_map(raw["record"]),
                        id_mapping=tuple(raw["id_mapping"]),
                        matches_truth=raw["matches_truth"] if self.verify_truth else None,
                        timings=StageTimings.from_dict(raw["timings"]),
                        probe_count=raw["probe_count"],
                        attempts=raw.get("attempts", 1),
                        pipeline_retries=raw.get("pipeline_retries", 0),
                    )
                )
                if raw_sink is not None:
                    raw_sink(raw)
                if self.db is not None:
                    self.db.store_record(raw["ppin"], raw["record"])
                    stored_any = True
                    pending_flush += 1
                    if pending_flush >= self.flush_every:
                        # Incremental persistence: a crash from here on loses
                        # at most flush_every maps, not the whole run.
                        self.db.save()
                        pending_flush = 0
            if self.db is not None and stored_any and pending_flush:
                self.db.save()

        outcomes = sorted(cached + fresh, key=lambda o: o.index)
        return SurveyReport(
            sku=sku.name,
            outcomes=outcomes,
            wall_seconds=time.perf_counter() - started,
            telemetry=self.tracer.snapshot() if self._tracing else None,
            drained=n_raws < len(jobs),
        )
