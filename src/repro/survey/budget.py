"""Failure budgets for survey shards.

PR 3's ``max_failures`` was a single absolute counter. A fleet shard needs
more nuance: a million-slot shard should tolerate thousands of scattered
transient failures but abort fast when 10% of its slots are failing (the
machine image is broken) or when one error class dominates (every
``MsrAccessError`` probably means the MSR module is missing). A
:class:`FailureBudget` expresses all three limits; the survey engine
checks it after every terminal slot failure and raises
:class:`~repro.core.errors.SurveyAbortedError` the moment any limit trips.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class FailureBudget:
    """How many terminally-failed slots a survey (shard) may absorb.

    All limits are optional and independent; the first to trip aborts.

    * ``max_failures`` — absolute cap on failed slots.
    * ``max_failure_fraction`` — cap on ``failed / planned`` slots, checked
      only once ``min_sample`` slots have been dispatched so a 1-slot shard
      cannot trip a 10% budget on its first failure.
    * ``per_class`` — error-class name → absolute cap (e.g.
      ``{"MsrAccessError": 5}``).
    """

    max_failures: int | None = None
    max_failure_fraction: float | None = None
    per_class: Mapping[str, int] = field(default_factory=dict)
    min_sample: int = 10

    def __post_init__(self) -> None:
        if self.max_failures is not None and self.max_failures < 0:
            raise ValueError("max_failures must be non-negative")
        if self.max_failure_fraction is not None and not 0.0 <= self.max_failure_fraction <= 1.0:
            raise ValueError("max_failure_fraction must be in [0, 1]")
        if any(cap < 0 for cap in self.per_class.values()):
            raise ValueError("per-class caps must be non-negative")
        if self.min_sample < 1:
            raise ValueError("min_sample must be >= 1")

    @property
    def unlimited(self) -> bool:
        return (
            self.max_failures is None
            and self.max_failure_fraction is None
            and not self.per_class
        )

    def tripped(
        self, n_failed: int, n_dispatched: int, n_planned: int, classes: Counter
    ) -> str | None:
        """The trip reason, or ``None`` while the budget still holds.

        ``n_dispatched`` is how many slots have finished (success or
        failure) so far; ``n_planned`` is the shard's full slot count —
        the fractional limit is taken against the plan, so a shard that is
        10% failed *of its whole workload* aborts even early.
        """
        if self.max_failures is not None and n_failed > self.max_failures:
            return (
                f"{n_failed} failed slots exceed max_failures={self.max_failures}"
            )
        if (
            self.max_failure_fraction is not None
            and n_planned > 0
            and n_dispatched >= self.min_sample
            and n_failed / n_planned > self.max_failure_fraction
        ):
            return (
                f"{n_failed}/{n_planned} failed slots exceed "
                f"max_failure_fraction={self.max_failure_fraction:g}"
            )
        for cls_name, cap in self.per_class.items():
            if classes.get(cls_name, 0) > cap:
                return (
                    f"{classes[cls_name]} {cls_name} failures exceed the "
                    f"per-class cap of {cap}"
                )
        return None

    # -- transport (manifests, CLI) ----------------------------------------------
    def as_dict(self) -> dict:
        return {
            "max_failures": self.max_failures,
            "max_failure_fraction": self.max_failure_fraction,
            "per_class": dict(self.per_class),
            "min_sample": self.min_sample,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FailureBudget":
        return cls(
            max_failures=data.get("max_failures"),
            max_failure_fraction=data.get("max_failure_fraction"),
            per_class=dict(data.get("per_class", {})),
            min_sample=data.get("min_sample", 10),
        )


class CircuitBreaker:
    """Per-SKU breaker over *correlated* failures across a whole fleet run.

    A :class:`FailureBudget` bounds one shard; the breaker watches the
    supervisor's view across shards. When every worker touching one SKU
    keeps dying or aborting, the cause is almost never the slots — it is
    the image, the SKU model, or the host — and launching takeover after
    takeover just burns the fleet. The breaker trips on either:

    * ``max_shard_failures`` — shards of one SKU that ended aborted/failed;
    * ``max_worker_crashes`` — worker process deaths (SIGKILL, nonzero
      exit, expired lease, stall kill) attributed to one SKU.

    Once tripped for a SKU it stays open: :meth:`tripped` keeps returning
    the reason, and the supervisor stops assigning that SKU's shards,
    drains what is running, and reports the run as tripped instead of
    grinding every remaining shard through its own failure budget.
    """

    def __init__(
        self,
        max_shard_failures: int | None = 2,
        max_worker_crashes: int | None = 10,
    ):
        if max_shard_failures is not None and max_shard_failures < 1:
            raise ValueError("max_shard_failures must be >= 1")
        if max_worker_crashes is not None and max_worker_crashes < 1:
            raise ValueError("max_worker_crashes must be >= 1")
        self.max_shard_failures = max_shard_failures
        self.max_worker_crashes = max_worker_crashes
        self._shard_failures: Counter = Counter()
        self._worker_crashes: Counter = Counter()

    def record_shard_failure(self, sku: str) -> str | None:
        self._shard_failures[sku] += 1
        return self.tripped(sku)

    def record_worker_crash(self, sku: str) -> str | None:
        self._worker_crashes[sku] += 1
        return self.tripped(sku)

    def tripped(self, sku: str) -> str | None:
        """The trip reason for ``sku``, or ``None`` while the circuit holds."""
        if (
            self.max_shard_failures is not None
            and self._shard_failures[sku] >= self.max_shard_failures
        ):
            return (
                f"{self._shard_failures[sku]} shards of SKU {sku} "
                f"aborted/failed (breaker cap {self.max_shard_failures})"
            )
        if (
            self.max_worker_crashes is not None
            and self._worker_crashes[sku] >= self.max_worker_crashes
        ):
            return (
                f"{self._worker_crashes[sku]} worker crashes on SKU {sku} "
                f"(breaker cap {self.max_worker_crashes})"
            )
        return None
