"""Failure budgets for survey shards.

PR 3's ``max_failures`` was a single absolute counter. A fleet shard needs
more nuance: a million-slot shard should tolerate thousands of scattered
transient failures but abort fast when 10% of its slots are failing (the
machine image is broken) or when one error class dominates (every
``MsrAccessError`` probably means the MSR module is missing). A
:class:`FailureBudget` expresses all three limits; the survey engine
checks it after every terminal slot failure and raises
:class:`~repro.core.errors.SurveyAbortedError` the moment any limit trips.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class FailureBudget:
    """How many terminally-failed slots a survey (shard) may absorb.

    All limits are optional and independent; the first to trip aborts.

    * ``max_failures`` — absolute cap on failed slots.
    * ``max_failure_fraction`` — cap on ``failed / planned`` slots, checked
      only once ``min_sample`` slots have been dispatched so a 1-slot shard
      cannot trip a 10% budget on its first failure.
    * ``per_class`` — error-class name → absolute cap (e.g.
      ``{"MsrAccessError": 5}``).
    """

    max_failures: int | None = None
    max_failure_fraction: float | None = None
    per_class: Mapping[str, int] = field(default_factory=dict)
    min_sample: int = 10

    def __post_init__(self) -> None:
        if self.max_failures is not None and self.max_failures < 0:
            raise ValueError("max_failures must be non-negative")
        if self.max_failure_fraction is not None and not 0.0 <= self.max_failure_fraction <= 1.0:
            raise ValueError("max_failure_fraction must be in [0, 1]")
        if any(cap < 0 for cap in self.per_class.values()):
            raise ValueError("per-class caps must be non-negative")
        if self.min_sample < 1:
            raise ValueError("min_sample must be >= 1")

    @property
    def unlimited(self) -> bool:
        return (
            self.max_failures is None
            and self.max_failure_fraction is None
            and not self.per_class
        )

    def tripped(
        self, n_failed: int, n_dispatched: int, n_planned: int, classes: Counter
    ) -> str | None:
        """The trip reason, or ``None`` while the budget still holds.

        ``n_dispatched`` is how many slots have finished (success or
        failure) so far; ``n_planned`` is the shard's full slot count —
        the fractional limit is taken against the plan, so a shard that is
        10% failed *of its whole workload* aborts even early.
        """
        if self.max_failures is not None and n_failed > self.max_failures:
            return (
                f"{n_failed} failed slots exceed max_failures={self.max_failures}"
            )
        if (
            self.max_failure_fraction is not None
            and n_planned > 0
            and n_dispatched >= self.min_sample
            and n_failed / n_planned > self.max_failure_fraction
        ):
            return (
                f"{n_failed}/{n_planned} failed slots exceed "
                f"max_failure_fraction={self.max_failure_fraction:g}"
            )
        for cls_name, cap in self.per_class.items():
            if classes.get(cls_name, 0) > cap:
                return (
                    f"{classes[cls_name]} {cls_name} failures exceed the "
                    f"per-class cap of {cap}"
                )
        return None

    # -- transport (manifests, CLI) ----------------------------------------------
    def as_dict(self) -> dict:
        return {
            "max_failures": self.max_failures,
            "max_failure_fraction": self.max_failure_fraction,
            "per_class": dict(self.per_class),
            "min_sample": self.min_sample,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FailureBudget":
        return cls(
            max_failures=data.get("max_failures"),
            max_failure_fraction=data.get("max_failure_fraction"),
            per_class=dict(data.get("per_class", {})),
            min_sample=data.get("min_sample", 10),
        )
