"""Fleet supervisor: lease-based shard ownership with automatic takeover.

:class:`~repro.survey.service.SurveyService` makes one shard crash-safe;
this module makes the *fleet* self-healing. A :class:`FleetSupervisor` owns
an ``N``-shard survey run end to end: it claims each shard through a
durable :class:`~repro.store.lease.ShardLease` (epoch-fenced, heartbeat
stamped), dispatches shard *workers* as subprocesses of the ``repro-map``
CLI, and watches three failure signals no single worker can handle for
itself:

* **dead owner** — the worker process exits without completing, or its
  lease heartbeats go stale past ``lease_ttl`` (a SIGKILLed, OOM-killed,
  or network-partitioned host). The supervisor reaps/kills it, bumps the
  lease epoch (fencing any zombie), and reassigns the shard to a fresh
  worker that resumes from the shard's journal.
* **wedged owner** — heartbeats keep arriving but journal-derived slot
  progress stands still past ``stall_deadline``. Alive-but-useless is
  reassigned exactly like dead.
* **poisoned slot** — a slot whose mapping deterministically kills its
  worker would murder every successive owner. The supervisor attributes
  each worker death to the lease's ``current_slot``; after
  ``poison_after`` deaths on one slot it quarantines the slot, and the
  next incarnation journals it as a durable ``poisoned`` outcome instead
  of dispatching it.

Because takeover just *resumes the journal*, a run interrupted by any
combination of these faults converges to a merged store byte-identical to
an undisturbed run — the same idempotent write-ordering argument as
single-shard resume (DESIGN §7b), applied transitively across owners: the
journal names exactly the slots whose canonical records are durable, every
re-run of an unjournaled slot rewrites identical bytes from its
global-index seed, and the epoch fence guarantees no two owners ever
append to one store concurrently.

A per-SKU :class:`~repro.survey.budget.CircuitBreaker` sits above the
per-shard failure budgets: when shards of one SKU keep aborting or
crashing, the fleet image itself is broken and the supervisor stops
feeding workers into it. SIGTERM to the supervisor (or any worker) drains
gracefully — in-flight slots finish, journals stay consistent, leases are
released — so ``--resume``/re-``supervise`` continues cleanly.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.store.lease import LeaseError, ShardLease
from repro.store.segments import MANIFEST_NAME, JsonlLog, probe_store_writer
from repro.survey.budget import CircuitBreaker
from repro.survey.service import (
    JOURNAL_NAME,
    MergeReport,
    ShardSpec,
    merge_shard_stores,
    read_shard_manifest,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Exit code a supervised worker uses when its lease was fenced away.
EXIT_LEASE_LOST = 4


@dataclass(frozen=True)
class SupervisorDrill:
    """Deterministic fault wiring for chaos drills (CI and tests).

    Each knob targets one shard's *first* incarnation (takeovers run
    clean), except ``poison_slot`` which arms every incarnation — that is
    the point: the slot must keep killing owners until quarantined.
    """

    #: SIGKILL this shard's first worker at its Nth durable write.
    kill_shard: int | None = None
    kill_at_write: int = 3
    #: Hang this shard's first worker: heartbeats freeze after B beats and
    #: slot progress stalls after W writes — a dead host to any observer.
    hang_shard: int | None = None
    hang_after_beats: int = 1
    hang_after_writes: int = 1
    #: Wedge this shard's first worker: progress stalls, heart keeps beating.
    stall_shard: int | None = None
    stall_after_writes: int = 1
    #: SIGKILL any worker the moment it starts mapping this global slot.
    poison_slot: int | None = None


@dataclass
class _ShardRun:
    """Supervisor-side mutable bookkeeping for one shard."""

    spec: ShardSpec
    state: str = "pending"
    incarnations: int = 0
    takeovers: int = 0
    reason: str | None = None
    #: slot index → worker deaths attributed to it (poison accounting).
    crash_counts: Counter = field(default_factory=Counter)
    quarantined: dict[int, str] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)
    #: Why the next incarnation is a takeover (set when requeueing).
    pending_reason: str | None = None
    # -- live worker state --
    proc: subprocess.Popen | None = None
    log_fh: Any = None
    owner: str | None = None
    epoch: int = 0
    last_beats: int = -1
    last_progress: int = -1
    beats_seen_at: float = 0.0
    progress_seen_at: float = 0.0


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's final standing in the fleet report."""

    shard: str
    state: str
    incarnations: int
    takeovers: int
    poisoned_slots: tuple[int, ...]
    reason: str | None
    events: tuple[str, ...]


@dataclass
class FleetReport:
    """What the supervisor did with the whole fleet."""

    sku: str
    n_instances: int
    state: str  # completed | partial | tripped | drained
    shards: list[ShardOutcome]
    wall_seconds: float
    merge: MergeReport | None = None

    @property
    def n_takeovers(self) -> int:
        return sum(s.takeovers for s in self.shards)

    @property
    def n_poisoned(self) -> int:
        return sum(len(s.poisoned_slots) for s in self.shards)

    @property
    def completed(self) -> bool:
        return self.state == "completed"


class FleetSupervisor:
    """Runs an ``N``-shard survey with ``M`` concurrent shard workers.

    Workers are subprocesses of the ``repro-map survey`` CLI in supervised
    mode (serial per-shard mapping; the shard fan-out *is* the
    parallelism), each fenced by the lease epoch the supervisor granted
    it. The supervisor never touches segment stores itself — ownership is
    expressed only through leases, and the store's own flock is used as a
    liveness cross-check before reassignment (a freshly killed worker's
    lock drops with its fd; a still-held lock means it has not died yet).
    """

    def __init__(
        self,
        store_root: str | os.PathLike,
        sku: str,
        n_instances: int,
        shards: int = 1,
        workers: int = 2,
        root_seed: int = 0,
        resilient: bool = True,
        lease_ttl: float = 10.0,
        stall_deadline: float = 60.0,
        heartbeat_interval: float = 1.0,
        poll_interval: float = 0.2,
        poison_after: int = 3,
        max_takeovers: int = 8,
        max_failures: int | None = None,
        max_failure_ratio: float | None = None,
        breaker: CircuitBreaker | None = None,
        tracer: Tracer | None = None,
        drill: SupervisorDrill | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if n_instances < 0:
            raise ValueError("n_instances must be non-negative")
        if lease_ttl <= 0 or stall_deadline <= 0:
            raise ValueError("lease_ttl and stall_deadline must be positive")
        if stall_deadline < lease_ttl:
            raise ValueError(
                "stall_deadline must be >= lease_ttl (a stall is judged on a "
                "lease that is still beating)"
            )
        if heartbeat_interval <= 0 or poll_interval <= 0:
            raise ValueError("intervals must be positive")
        if poison_after < 1:
            raise ValueError("poison_after must be >= 1")
        if max_takeovers < 1:
            raise ValueError("max_takeovers must be >= 1")
        self.store_root = Path(store_root)
        self.sku = sku
        self.n_instances = n_instances
        self.shards = shards
        self.workers = workers
        self.root_seed = root_seed
        self.resilient = resilient
        self.lease_ttl = lease_ttl
        self.stall_deadline = stall_deadline
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.poison_after = poison_after
        self.max_takeovers = max_takeovers
        self.max_failures = max_failures
        self.max_failure_ratio = max_failure_ratio
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.drill = drill if drill is not None else SupervisorDrill()
        self._drain_requested = False
        self._trip_reason: str | None = None
        self._id = f"sup-{os.getpid()}"

    # -- public control ----------------------------------------------------------
    def request_drain(self) -> None:
        """Ask the fleet to wind down gracefully (idempotent, signal-safe)."""
        self._drain_requested = True

    # -- worker process plumbing -------------------------------------------------
    def _shard_dir(self, spec: ShardSpec) -> Path:
        return self.store_root / spec.dirname()

    def _lease(self, run: _ShardRun) -> ShardLease:
        return ShardLease(self._shard_dir(run.spec))

    def _worker_argv(self, run: _ShardRun) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.tools.map_cli",
            "survey",
            "--sku",
            self.sku,
            "-n",
            str(self.n_instances),
            "--root-seed",
            str(self.root_seed),
            "--store",
            str(self.store_root),
            "--shard",
            str(run.spec),
            "--supervised",
            "--lease-owner",
            str(run.owner),
            "--lease-epoch",
            str(run.epoch),
            "--heartbeat-interval",
            str(self.heartbeat_interval),
        ]
        if self.resilient:
            argv.append("--resilient")
        if self.max_failures is not None:
            argv += ["--max-failures", str(self.max_failures)]
        if self.max_failure_ratio is not None:
            argv += ["--max-failure-ratio", str(self.max_failure_ratio)]
        if run.quarantined:
            argv += ["--quarantine", ",".join(map(str, sorted(run.quarantined)))]
        first = run.incarnations == 0
        drill = self.drill
        if first and drill.kill_shard == run.spec.index:
            argv += ["--crash-at-write", str(drill.kill_at_write)]
        if first and drill.hang_shard == run.spec.index:
            argv += [
                "--drill-freeze-after",
                str(drill.hang_after_beats),
                "--drill-stall-after",
                str(drill.hang_after_writes),
            ]
        if first and drill.stall_shard == run.spec.index:
            argv += ["--drill-stall-after", str(drill.stall_after_writes)]
        if drill.poison_slot is not None and run.spec.owns(drill.poison_slot):
            # Armed on every incarnation; quarantine is what defuses it
            # (a quarantined slot is never dispatched, so the crashpoint
            # never fires — exactly the production contract).
            argv += ["--drill-crash-slot", str(drill.poison_slot)]
        return argv

    def _worker_env(self) -> dict[str, str]:
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir + (os.pathsep + prior if prior else "")
        return env

    def _launch(self, run: _ShardRun) -> None:
        lease = self._lease(run)
        prior = lease.read()
        takeover = prior is not None and prior.held
        run.owner = f"{self._id}:shard-{run.spec}:inc-{run.incarnations + 1}"
        granted = lease.acquire(run.owner, pid=None, takeover=takeover)
        run.epoch = granted.epoch
        self.tracer.counter(
            "supervisor_leases_acquired_total", shard=str(run.spec)
        ).inc()
        if run.incarnations > 0:
            run.takeovers += 1
            self.tracer.counter(
                "supervisor_takeovers_total",
                shard=str(run.spec),
                reason=run.pending_reason or "crash",
            ).inc()
            run.events.append(
                f"takeover #{run.takeovers} (epoch {run.epoch}): "
                f"{run.pending_reason or 'crash'}"
            )
        run.pending_reason = None

        shard_dir = self._shard_dir(run.spec)
        shard_dir.mkdir(parents=True, exist_ok=True)
        run.log_fh = open(
            shard_dir / f"worker-epoch-{run.epoch:04d}.log", "w", encoding="utf-8"
        )
        run.proc = subprocess.Popen(
            self._worker_argv(run),
            stdout=run.log_fh,
            stderr=subprocess.STDOUT,
            env=self._worker_env(),
        )
        run.incarnations += 1
        run.state = "running"
        now = time.monotonic()
        run.last_beats = -1
        run.last_progress = -1
        run.beats_seen_at = now
        run.progress_seen_at = now
        self.tracer.counter("supervisor_workers_launched_total").inc()

    def _close_worker(self, run: _ShardRun) -> None:
        if run.log_fh is not None:
            run.log_fh.close()
            run.log_fh = None
        run.proc = None

    def _kill_worker(self, run: _ShardRun) -> None:
        """SIGKILL the incarnation and wait for its store lock to drop."""
        if run.proc is not None:
            try:
                run.proc.kill()
            except OSError:  # pragma: no cover - already gone
                pass
            run.proc.wait(timeout=30)
        self._close_worker(run)
        # The kernel drops the dead worker's flock with its last fd; poll
        # until it is observably free so the successor cannot lose the
        # race and die on SegmentStoreLocked.
        deadline = time.monotonic() + 10.0
        while probe_store_writer(self._shard_dir(run.spec)):
            if time.monotonic() > deadline:  # pragma: no cover - defensive
                break
            time.sleep(0.02)

    # -- failure attribution -----------------------------------------------------
    def _journaled_slots(self, spec: ShardSpec) -> set[int]:
        try:
            return {
                int(entry["slot"])
                for entry in JsonlLog.read_records(
                    self._shard_dir(spec) / JOURNAL_NAME, repair=False
                )
                if entry.get("kind") == "slot"
            }
        except Exception:  # pragma: no cover - torn tail mid-crash
            return set()

    def _attribute_death(self, run: _ShardRun) -> None:
        """Charge a worker death to the slot it was mapping, if any."""
        try:
            state = self._lease(run).read()
        except LeaseError:  # pragma: no cover - defensive
            state = None
        slot = state.current_slot if state is not None else None
        if slot is None or slot in self._journaled_slots(run.spec):
            # Died between slots (or after the fatal slot was journaled):
            # nothing to poison.
            return
        run.crash_counts[slot] += 1
        if (
            run.crash_counts[slot] >= self.poison_after
            and slot not in run.quarantined
        ):
            run.quarantined[slot] = (
                f"poisoned: killed {run.crash_counts[slot]} consecutive "
                f"workers of shard {run.spec} (quarantined by {self._id})"
            )
            run.events.append(
                f"slot {slot} quarantined after {run.crash_counts[slot]} "
                "worker deaths"
            )
            self.tracer.counter(
                "supervisor_poisoned_slots_total", shard=str(run.spec)
            ).inc()

    def _record_worker_death(
        self, run: _ShardRun, reason: str, attribute_slot: bool
    ) -> None:
        self.tracer.counter(
            "supervisor_worker_crashes_total", shard=str(run.spec)
        ).inc()
        if attribute_slot:
            self._attribute_death(run)
        trip = self.breaker.record_worker_crash(self.sku)
        if trip is not None and self._trip_reason is None:
            self._trip_reason = trip
        if run.takeovers + 1 >= self.max_takeovers:
            run.state = "failed"
            run.reason = (
                f"{reason}; gave up after {run.incarnations} incarnations "
                f"(max_takeovers={self.max_takeovers})"
            )
            run.events.append(run.reason)
            trip = self.breaker.record_shard_failure(self.sku)
            if trip is not None and self._trip_reason is None:
                self._trip_reason = trip
        else:
            run.state = "pending"
            run.pending_reason = reason

    # -- per-tick observation ----------------------------------------------------
    def _manifest_state(self, spec: ShardSpec) -> tuple[str, str | None]:
        try:
            manifest = read_shard_manifest(self._shard_dir(spec))
        except (OSError, ValueError):
            return "missing", None
        return manifest.get("state", "missing"), manifest.get("reason")

    def _observe_exit(self, run: _ShardRun, code: int) -> None:
        self._close_worker(run)
        state, reason = self._manifest_state(run.spec)
        if code == 0 and state == "completed":
            run.state = "completed"
            self.tracer.counter(
                "supervisor_shards_total", outcome="completed"
            ).inc()
            return
        if code == 0 and self._drain_requested:
            run.state = "drained"
            run.events.append("worker drained cleanly")
            return
        if state == "aborted":
            # The shard's own failure budget tripped: durable, terminal,
            # and *not* a worker crash — takeover cannot help a shard
            # whose slots genuinely keep failing.
            run.state = "aborted"
            run.reason = reason
            run.events.append(f"aborted by failure budget: {reason}")
            self.tracer.counter(
                "supervisor_shards_total", outcome="aborted"
            ).inc()
            trip = self.breaker.record_shard_failure(self.sku)
            if trip is not None and self._trip_reason is None:
                self._trip_reason = trip
            return
        if code == EXIT_LEASE_LOST:
            # A fenced zombie wound down on its own; its shard was already
            # reassigned. Nothing to do — do not double-count the death.
            run.events.append("stale worker observed its fencing and exited")
            return
        signal_note = (
            f"signal {-code}" if code < 0 else f"exit {code}"
        )
        run.events.append(f"worker died ({signal_note})")
        self._record_worker_death(run, "crash", True)

    def _observe_liveness(self, run: _ShardRun) -> None:
        now = time.monotonic()
        try:
            state = self._lease(run).read()
        except LeaseError:  # pragma: no cover - mid-replace read
            return
        if state is None or state.epoch != run.epoch:
            return
        if state.beats > run.last_beats:
            run.last_beats = state.beats
            run.beats_seen_at = now
        if state.progress > run.last_progress:
            run.last_progress = state.progress
            run.progress_seen_at = now
        if now - run.beats_seen_at > self.lease_ttl:
            run.events.append(
                f"lease expired (no beat in {self.lease_ttl:g}s at "
                f"beat {max(run.last_beats, 0)})"
            )
            self.tracer.counter(
                "supervisor_leases_expired_total", shard=str(run.spec)
            ).inc()
            self._kill_worker(run)
            self._record_worker_death(run, "lease-expired", False)
        elif now - run.progress_seen_at > self.stall_deadline:
            run.events.append(
                f"stalled (no slot progress in {self.stall_deadline:g}s "
                f"at progress {max(run.last_progress, 0)})"
            )
            self.tracer.counter(
                "supervisor_stalls_total", shard=str(run.spec)
            ).inc()
            self._kill_worker(run)
            self._record_worker_death(run, "stall", False)

    # -- the supervision loop ----------------------------------------------------
    def run(self) -> FleetReport:
        """Drive every shard to a terminal state; returns the fleet report."""
        started = time.perf_counter()
        runs = [
            _ShardRun(spec=ShardSpec(index, self.shards))
            for index in range(self.shards)
        ]
        queue: deque[_ShardRun] = deque(runs)
        active: list[_ShardRun] = []

        with self.tracer.span(
            "supervise",
            sku=self.sku,
            n_instances=self.n_instances,
            shards=self.shards,
            workers=self.workers,
        ):
            while queue or active:
                if self._drain_requested or self._trip_reason is not None:
                    break
                while queue and len(active) < self.workers:
                    run = queue.popleft()
                    self._launch(run)
                    active.append(run)
                time.sleep(self.poll_interval)
                still: list[_ShardRun] = []
                for run in active:
                    code = run.proc.poll() if run.proc is not None else None
                    if code is not None:
                        self._observe_exit(run, code)
                    else:
                        self._observe_liveness(run)
                    if run.state == "running":
                        still.append(run)
                    elif run.state == "pending":
                        queue.append(run)
                active = still

            if self._trip_reason is not None:
                self.tracer.counter(
                    "supervisor_breaker_tripped_total", sku=self.sku
                ).inc()
            if self._drain_requested or self._trip_reason is not None:
                self._drain_active(active)
                for run in queue:
                    if run.state == "pending":
                        run.state = "skipped" if self._trip_reason else "pending"

        state = self._fleet_state(runs)
        if self._drain_requested:
            self.tracer.counter("supervisor_drains_total").inc()
        return FleetReport(
            sku=self.sku,
            n_instances=self.n_instances,
            state=state,
            shards=[
                ShardOutcome(
                    shard=str(run.spec),
                    state=run.state,
                    incarnations=run.incarnations,
                    takeovers=run.takeovers,
                    poisoned_slots=tuple(sorted(run.quarantined)),
                    reason=run.reason,
                    events=tuple(run.events),
                )
                for run in runs
            ],
            wall_seconds=time.perf_counter() - started,
        )

    def _drain_active(self, active: list[_ShardRun]) -> None:
        """SIGTERM live workers and wait for their graceful exits."""
        for run in active:
            if run.proc is not None:
                try:
                    run.proc.send_signal(signal.SIGTERM)
                except OSError:  # pragma: no cover - already gone
                    pass
        deadline = time.monotonic() + max(60.0, self.stall_deadline)
        for run in active:
            if run.proc is None:
                continue
            timeout = max(1.0, deadline - time.monotonic())
            try:
                code = run.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                self._kill_worker(run)
                run.state = "pending"
                run.events.append("drain timed out; worker killed")
                continue
            self._observe_exit(run, code)
            if run.state == "running":
                run.state = "drained"

    def _fleet_state(self, runs: list[_ShardRun]) -> str:
        if self._trip_reason is not None:
            return f"tripped: {self._trip_reason}"
        if self._drain_requested:
            return "drained"
        if all(run.state == "completed" for run in runs):
            return "completed"
        return "partial"

    # -- post-run conveniences ---------------------------------------------------
    def merge(self, out_path: str | os.PathLike) -> MergeReport:
        """Merge the finished shard stores into one canonical database."""
        return merge_shard_stores(self.store_root, out_path)

    def shard_manifest_states(self) -> dict[str, str]:
        """``"i/N"`` → manifest state, for diagnostics and tests."""
        states: dict[str, str] = {}
        for index in range(self.shards):
            spec = ShardSpec(index, self.shards)
            if (self._shard_dir(spec) / MANIFEST_NAME).exists():
                states[str(spec)] = self._manifest_state(spec)[0]
            else:
                states[str(spec)] = "missing"
        return states
