"""Aggregation of per-stage pipeline timings across a fleet.

Each mapped instance carries a :class:`~repro.core.pipeline.StageTimings`;
the survey engine folds them into one :class:`StageAggregate` per §II stage
so a fleet run reports where its wall clock went.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.pipeline import StageTimings

#: Stage label → StageTimings field, in pipeline order.
STAGE_FIELDS: tuple[tuple[str, str], ...] = (
    ("cha_mapping", "cha_mapping_seconds"),
    ("probe", "probe_seconds"),
    ("solve", "solve_seconds"),
)


@dataclass(frozen=True)
class StageAggregate:
    """Distribution of one stage's wall clock across mapped instances."""

    stage: str
    count: int
    total_seconds: float
    min_seconds: float
    max_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def aggregate_timings(timings: Iterable[StageTimings]) -> dict[str, StageAggregate]:
    """Fold per-instance stage timings into one aggregate per stage.

    Returns an empty dict when no timings are supplied (e.g. a survey that
    was served entirely from the PPIN cache).
    """
    samples = list(timings)
    if not samples:
        return {}
    out: dict[str, StageAggregate] = {}
    for stage, field in STAGE_FIELDS:
        values = [getattr(t, field) for t in samples]
        out[stage] = StageAggregate(
            stage=stage,
            count=len(values),
            total_seconds=sum(values),
            min_seconds=min(values),
            max_seconds=max(values),
        )
    return out
