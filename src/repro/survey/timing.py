"""Deprecated compatibility shim — import from the canonical homes instead.

.. deprecated:: 1.0
    The survey-specific aggregation grew into the general span aggregator.
    ``StageAggregate`` is an alias of
    :class:`repro.telemetry.aggregate.SpanAggregate` (whose ``stage``
    property preserves the old field); ``aggregate_timings`` and
    ``STAGE_FIELDS`` live in :mod:`repro.survey.runner` (re-exported from
    :mod:`repro.survey`). Every attribute access on this module emits a
    :class:`DeprecationWarning`; **the module will be removed in 2.0**.
"""

from __future__ import annotations

import warnings
from typing import Any

_FORWARDS = {
    "StageAggregate": (
        "repro.telemetry.aggregate",
        "SpanAggregate",
        "repro.telemetry.aggregate.SpanAggregate",
    ),
    "aggregate_timings": (
        "repro.survey.runner",
        "aggregate_timings",
        "repro.survey.aggregate_timings",
    ),
    "STAGE_FIELDS": (
        "repro.survey.runner",
        "STAGE_FIELDS",
        "repro.survey.runner.STAGE_FIELDS",
    ),
}

__all__ = list(_FORWARDS)


def __getattr__(name: str) -> Any:
    forward = _FORWARDS.get(name)
    if forward is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr, canonical = forward
    warnings.warn(
        f"repro.survey.timing.{name} is deprecated; import {canonical} "
        "instead (repro.survey.timing will be removed in 2.0)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)
