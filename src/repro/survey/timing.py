"""Compatibility layer over :mod:`repro.telemetry.aggregate`.

.. deprecated::
    The survey-specific aggregation grew into the general span aggregator
    in :mod:`repro.telemetry.aggregate`. ``StageAggregate`` is now an alias
    of :class:`~repro.telemetry.aggregate.SpanAggregate` (whose ``stage``
    property preserves the old field) and :func:`aggregate_timings` folds
    through a :class:`~repro.telemetry.aggregate.SpanAggregator`. Existing
    imports keep working; new code should import from ``repro.telemetry``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.pipeline import StageTimings
from repro.telemetry.aggregate import SpanAggregate, SpanAggregator

#: Alias kept for pre-telemetry callers; ``.stage`` mirrors ``.name``.
StageAggregate = SpanAggregate

#: Stage label → StageTimings field, in pipeline order.
STAGE_FIELDS: tuple[tuple[str, str], ...] = (
    ("cha_mapping", "cha_mapping_seconds"),
    ("probe", "probe_seconds"),
    ("solve", "solve_seconds"),
)


def aggregate_timings(timings: Iterable[StageTimings]) -> dict[str, StageAggregate]:
    """Fold per-instance stage timings into one aggregate per stage.

    Returns an empty dict when no timings are supplied (e.g. a survey that
    was served entirely from the PPIN cache).
    """
    aggregator = SpanAggregator()
    for t in timings:
        for stage, field in STAGE_FIELDS:
            aggregator.add(stage, getattr(t, field))
    return aggregator.stats()
