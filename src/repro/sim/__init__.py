"""The attacker/tool-facing machine facade.

:class:`~repro.sim.machine.SimulatedMachine` is the composition root that
stands in for "a bare-metal cloud instance with root": it exposes *only*
what the paper's tool can use on real hardware —

* the list of OS core IDs;
* pinned worker-thread workloads (eviction sweeps, contended writes,
  producer/consumer line bouncing) addressed **by OS core ID**;
* MSR access (PPIN, uncore PMON, thermal status), optionally through a
  simulated ``/dev/cpu/N/msr`` file tree;
* per-core temperature readings (1 °C granularity) and load control for the
  covert-channel experiments.

Everything else (tile coordinates, CHA placement, the slice hash) stays
hidden inside the underlying :class:`~repro.platform.instance.CpuInstance`.
"""

from repro.sim.workload import NoiseConfig
from repro.sim.threads import ContendedWrite, EvictionSweep, ProducerConsumer
from repro.sim.machine import SimulatedMachine
from repro.sim.factory import build_machine, build_machine_for_sku

__all__ = [
    "NoiseConfig",
    "ContendedWrite",
    "EvictionSweep",
    "ProducerConsumer",
    "SimulatedMachine",
    "build_machine",
    "build_machine_for_sku",
]
