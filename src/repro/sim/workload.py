"""Background-tenant noise configuration.

The paper's measurements run on a commercial cloud, so every probe competes
with other tenants' traffic. ``NoiseConfig`` controls how much random
core↔IMC traffic is injected around each attacker workload and how noisy
the thermal environment is.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NoiseConfig:
    """Knobs for simulated co-tenant interference."""

    #: Random mesh flows injected per attacker probe operation.
    mesh_flows_per_op: int = 8
    #: Mean cache lines per background flow.
    mesh_lines_per_flow: int = 6
    #: Std-dev of ambient per-tile power fluctuation (watts).
    thermal_power_sigma: float = 0.4
    #: Std-dev of additive sensor noise (degrees C, before quantisation).
    sensor_noise_sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.mesh_flows_per_op < 0 or self.mesh_lines_per_flow < 0:
            raise ValueError("mesh noise parameters must be non-negative")
        if self.thermal_power_sigma < 0 or self.sensor_noise_sigma < 0:
            raise ValueError("thermal noise parameters must be non-negative")

    @classmethod
    def quiet(cls) -> "NoiseConfig":
        """A noise-free machine (used by unit tests and calibration)."""
        return cls(0, 0, 0.0, 0.0)
