"""Fork-snapshot machine state for the survey fan-out.

Building a :class:`~repro.sim.machine.SimulatedMachine` means sampling a
fused pattern, generating a slice hash, wiring a mesh and a full CHA PMON
register space — work every pool worker used to repeat from ``(sku, seed)``.
A *snapshot* is the pickled machine taken immediately after construction:
restoring it yields an object graph equal to a fresh build (hook closures
are re-installed by ``__setstate__`` on the PMON model), so a worker that
unpickles instead of rebuilding maps bit-identically to a serial run.

:data:`SNAPSHOT_CACHE` memoises snapshots per ``(sku, instance seed,
machine seed, noise)``. Keys are exact construction inputs and construction
is deterministic, so entries can never go stale; the cache pays off whenever
one machine is built more than once in a process — slot retries, crash
recovery, repeated surveys, and the parent side of a pool fan-out.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.platform.instance import CpuInstance
from repro.platform.skus import SKU_CATALOG, SkuSpec
from repro.sim.machine import SimulatedMachine
from repro.sim.workload import NoiseConfig


def snapshot_machine(machine: SimulatedMachine) -> bytes:
    """Serialize a freshly built mapping machine (memory MSR backend only)."""
    return pickle.dumps(machine, protocol=pickle.HIGHEST_PROTOCOL)


def restore_machine(data: bytes) -> SimulatedMachine:
    """Rehydrate a snapshot into a machine equal to a fresh build."""
    return pickle.loads(data)


@dataclass
class SnapshotCache:
    """Bounded FIFO memo from construction inputs to snapshot bytes."""

    max_entries: int = 128
    hits: int = 0
    misses: int = 0
    _entries: dict[tuple, bytes] = field(default_factory=dict)

    def get(self, key: tuple) -> bytes | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: tuple, data: bytes) -> None:
        if key in self._entries:
            return
        if len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = data

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global snapshot cache (cleared by ``repro.perf.clear_caches``).
SNAPSHOT_CACHE = SnapshotCache()


def _noise_key(noise_kwargs: dict[str, Any] | None) -> tuple | None:
    if noise_kwargs is None:
        return None
    return tuple(sorted(noise_kwargs.items()))


def machine_snapshot(
    sku: SkuSpec | str,
    inst_seed: int,
    machine_seed: int,
    noise_kwargs: dict[str, Any] | None = None,
) -> bytes:
    """Snapshot bytes for ``(sku, seeds, noise)``, built once per process."""
    spec = SKU_CATALOG[sku] if isinstance(sku, str) else sku
    key = (spec.name, inst_seed, machine_seed, _noise_key(noise_kwargs))
    data = SNAPSHOT_CACHE.get(key)
    if data is None:
        # Import here: the factory imports thermal machinery this module's
        # consumers (pool workers) never need at import time.
        from repro.sim.factory import build_machine

        noise = NoiseConfig(**noise_kwargs) if noise_kwargs is not None else None
        machine = build_machine(
            CpuInstance.generate(spec, inst_seed),
            seed=machine_seed,
            noise=noise,
            with_thermal=False,
        )
        data = snapshot_machine(machine)
        SNAPSHOT_CACHE.put(key, data)
    return data


def machine_from_snapshot(
    sku: SkuSpec | str,
    inst_seed: int,
    machine_seed: int,
    noise_kwargs: dict[str, Any] | None = None,
) -> SimulatedMachine:
    """A machine equal to ``build_machine(generate(sku, inst_seed), ...)``."""
    return restore_machine(machine_snapshot(sku, inst_seed, machine_seed, noise_kwargs))
