"""The simulated bare-metal machine.

This is the boundary between the attacker's tool and the hidden hardware:
the mapping pipeline (:mod:`repro.core`) and the covert channel
(:mod:`repro.covert`) receive a :class:`SimulatedMachine` and may only call
its public methods — none of which leak tile coordinates.

Thermal behaviour is attached lazily (``attach_thermal``) because the
mapping experiments do not need it.
"""

from __future__ import annotations

import tempfile
from typing import TYPE_CHECKING

import numpy as np

from repro.cache.eviction import addresses_in_l2_set, rng_state_token
from repro.cache.address import random_line_addresses
from repro.msr.constants import (
    IA32_THERM_STATUS,
    MSR_PPIN,
    MSR_TEMPERATURE_TARGET,
    decode_temperature_target,
    encode_therm_status,
)
from repro.mesh.noc import DATA_CYCLES_PER_LINE
from repro.msr.device import MsrDevice
from repro.msr.simfs import FileBackedMsrDevice, MsrFileTree
from repro.perf import FLAGS
from repro.platform.instance import CpuInstance
from repro.sim.threads import ContendedWrite, EvictionSweep, ProducerConsumer, Workload
from repro.sim.workload import NoiseConfig
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.thermal.rc_model import ThermalSimulator


class _NoiseStream:
    """Chunk-buffered background-noise draws on a dedicated RNG.

    Every ``_inject_noise`` needs four small random vectors (source picks,
    destination picks, line-count jitters, direction swaps). Drawing them
    per call costs four generator invocations on the hottest path in the
    simulator; this stream draws each vector for thousands of future
    injections at once and serves contiguous slices. The sequence of served
    values is a pure function of the stream's seed and the (fixed) per-call
    flow count, so runs are exactly reproducible.
    """

    CHUNK = 4096

    def __init__(self, rng, n_src: int, n_dst: int, lines_per_flow: int, cycle_mult: int):
        self._rng = rng
        self._n_src = n_src
        self._n_dst = n_dst
        self._lam = lines_per_flow
        self._cycle_mult = cycle_mult
        self._pos = self.CHUNK  # force a refill on first draw

    def _refill(self) -> None:
        rng = self._rng
        self._src = rng.integers(self._n_src, size=self.CHUNK)
        self._dst = rng.integers(self._n_dst, size=self.CHUNK)
        self._jit = rng.poisson(self._lam, size=self.CHUNK)
        self._swap = rng.random(size=self.CHUNK) < 0.5
        # The derived quantities every injection needs, computed once per
        # chunk instead of once per call: the mesh's route-table key and the
        # per-flow occupancy cycles.
        self._keys = (self._src * self._n_dst + self._dst) * 2 + self._swap
        self._cycles = np.maximum(self._jit, 1) * self._cycle_mult
        self._pos = 0

    def draw(self, n: int):
        pos = self._pos
        if pos + n > self.CHUNK:
            self._refill()
            pos = 0
        self._pos = pos + n
        end = pos + n
        return (
            self._src[pos:end],
            self._dst[pos:end],
            self._jit[pos:end],
            self._swap[pos:end],
        )

    def draw_keyed(self, n: int):
        """(route-table keys, cycles) slices — same draws as :meth:`draw`."""
        pos = self._pos
        if pos + n > self.CHUNK:
            self._refill()
            pos = 0
        self._pos = pos + n
        end = pos + n
        return self._keys[pos:end], self._cycles[pos:end]


class SimulatedMachine:
    """A bare-metal instance as the attacker's tool sees it."""

    def __init__(
        self,
        instance: CpuInstance,
        noise: NoiseConfig | None = None,
        msr_backend: str = "memory",
        msr_root: str | None = None,
        seed: int = 0,
    ):
        self.instance = instance
        self.noise = noise if noise is not None else NoiseConfig()
        self._rng = derive_rng(seed, "machine", instance.ppin)
        # Background noise runs on its own derived stream so the hot path
        # can buffer draws in bulk (see _NoiseStream) without perturbing the
        # address-sampling stream.
        self._noise_rng = derive_rng(seed, "noise", instance.ppin)
        self._noise_stream: _NoiseStream | None = None
        # Replay bookkeeping: the noise stream's served sequence is a pure
        # function of its origin state and how many injections it has fed,
        # so (origin token, injection count) pins it exactly.
        self._noise_token0 = rng_state_token(self._noise_rng)
        self._noise_injections = 0
        self._thermal: "ThermalSimulator | None" = None

        if msr_backend == "memory":
            self._msr: MsrDevice = instance.registers
        elif msr_backend == "file":
            root = msr_root or tempfile.mkdtemp(prefix="repro-msr-")
            tree = MsrFileTree(root, instance.registers, instance.tracked_msr_addrs())
            self._msr = FileBackedMsrDevice(tree)
        else:
            raise ValueError(f"unknown msr backend {msr_backend!r}")

    # -- attacker-visible basics ----------------------------------------------
    @property
    def msr(self) -> MsrDevice:
        """Root MSR access (the only privileged interface the tool needs)."""
        return self._msr

    @property
    def n_os_cores(self) -> int:
        return self.instance.n_os_cores

    def os_cores(self) -> list[int]:
        return list(range(self.n_os_cores))

    @property
    def n_chas(self) -> int:
        """CHA count — discoverable on real hardware from CAPID registers."""
        return self.instance.n_chas

    def read_ppin(self) -> int:
        return self._msr.read(0, MSR_PPIN)

    # -- memory services (what mmap/hugepages give the attacker) ----------------
    def sample_line_addresses(self, count: int) -> list[int]:
        """Line addresses of a freshly allocated buffer (random placement)."""
        return random_line_addresses(self._rng, count)

    def sample_lines_in_l2_set(self, l2_set: int, count: int) -> list[int]:
        """Same-L2-set line addresses (hugepage-backed allocation makes the
        physical set bits attacker-controllable on real hardware)."""
        return addresses_in_l2_set(self.instance.l2, l2_set, self._rng, count)

    @property
    def l2_geometry(self):
        """Public L2 geometry (documented per CPU model)."""
        return self.instance.l2

    # -- cache-replay bookkeeping ----------------------------------------------
    @property
    def cacheable_measurements(self) -> bool:
        """Whether measurement phases on this machine may be memoised.

        True here; fault-injection wrappers override it to False — a faulted
        run must execute every probe so injected faults land where they
        would on real hardware, never replay a healthy run's results.
        """
        return True

    def sampling_token(self) -> tuple:
        """Hashable digest of the address-sampling RNG's exact state."""
        return rng_state_token(self._rng)

    def sampling_state(self) -> dict:
        """Snapshot of the address-sampling RNG (pair with restore below)."""
        return self._rng.bit_generator.state

    def restore_sampling_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    @property
    def noise_injections(self) -> int:
        """Total noise injections served so far (replayed ones included)."""
        return self._noise_injections

    def noise_token(self) -> tuple:
        """Hashable digest pinning the noise stream's remaining output.

        Equal tokens on the same machine identity imply every future noise
        draw is identical — the stream only ever serves fixed-size slices of
        a sequence determined by its origin state.
        """
        return (
            self._noise_token0,
            self._noise_injections,
            self.noise.mesh_flows_per_op,
            self.noise.mesh_lines_per_flow,
        )

    def skip_noise_injections(self, n: int) -> None:
        """Advance the noise stream past ``n`` cached injections.

        A cache hit replays a phase's *results* without running its probes,
        but the co-tenant noise those probes would have interleaved must
        still be consumed so every later draw matches the cold run
        draw-for-draw. The skipped deposits themselves are invisible: all
        measurements are post-reset deltas, and the replayed phase's
        counters are reset before the next phase reads them.
        """
        flows = self.noise.mesh_flows_per_op
        if not flows or n <= 0:
            return
        stream = self._ensure_noise_stream()
        if stream is None:
            return
        for _ in range(n):
            stream.draw(flows)
        self._noise_injections += n

    def skip_noise_ops(self, n_ops: int) -> None:
        """Advance the noise stream past ``n_ops`` cached workload executions
        (two injections bracket every execution — see :meth:`execute`)."""
        self.skip_noise_injections(2 * n_ops)

    # -- pinned workloads ----------------------------------------------------------
    def execute(self, workload: Workload) -> None:
        """Run one pinned workload to completion (with co-tenant noise)."""
        self._inject_noise()
        if isinstance(workload, EvictionSweep):
            core = self._coord_of(workload.os_core)
            self.instance.cache.sweep_evictions(core, list(workload.addresses), workload.sweeps)
        elif isinstance(workload, ContendedWrite):
            a = self._coord_of(workload.os_core_a)
            b = self._coord_of(workload.os_core_b)
            self.instance.cache.contended_write(a, b, workload.address, workload.rounds)
        elif isinstance(workload, ProducerConsumer):
            src = self._coord_of(workload.source)
            sink = self._coord_of(workload.sink)
            self.instance.cache.producer_consumer(src, sink, workload.address, workload.rounds)
        else:
            raise TypeError(f"unknown workload type {type(workload).__name__}")
        self._inject_noise()

    def idle_window(self) -> None:
        """Let a measurement window pass with no attacker workload.

        Co-tenant traffic still flows; the tool uses such windows to
        calibrate its noise floor before thresholding probe readings.
        """
        self._inject_noise()
        self._inject_noise()

    def _coord_of(self, os_core: int):
        if not 0 <= os_core < self.n_os_cores:
            raise ValueError(f"cannot pin a thread to non-existent core {os_core}")
        return self.instance.coord_of_os_core(os_core)

    def _ensure_noise_stream(self) -> _NoiseStream | None:
        stream = self._noise_stream
        if stream is None:
            n_src, n_dst = self.instance.mesh.background_endpoint_counts()
            if n_src == 0:
                return None
            stream = _NoiseStream(
                self._noise_rng,
                n_src,
                n_dst,
                self.noise.mesh_lines_per_flow,
                DATA_CYCLES_PER_LINE,
            )
            self._noise_stream = stream
        return stream

    def _inject_noise(self) -> None:
        flows = self.noise.mesh_flows_per_op
        if not flows:
            return
        stream = self._ensure_noise_stream()
        if stream is None:
            return
        self._noise_injections += 1
        if FLAGS.fused_deposit:
            # Keys and cycles were precomputed chunk-wide by the stream; the
            # mesh banks them straight into the lazy accumulator. Both draw
            # variants advance the same buffered sequence, so toggling the
            # flag mid-run never desynchronises the noise stream.
            self.instance.mesh.inject_background_keyed(*stream.draw_keyed(flows))
            return
        self.instance.mesh.inject_background_values(*stream.draw(flows))

    # -- snapshot support ------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle for :mod:`repro.sim.snapshot` — mapping machines only.

        Thermal simulators and file-backed MSR trees hold hook closures and
        file handles that cannot cross a process boundary; the survey
        pipeline never needs either, so snapshots simply refuse them.
        """
        if self._thermal is not None:
            raise TypeError("machines with thermal attached cannot be snapshotted")
        if self._msr is not self.instance.registers:
            raise TypeError("only memory-backend machines can be snapshotted")
        return self.__dict__.copy()

    # -- thermal interface ---------------------------------------------------------
    def attach_thermal(self, thermal: "ThermalSimulator") -> None:
        """Wire a thermal simulator into the machine (and its MSR space)."""
        self._thermal = thermal
        self.instance.registers.install_read_hook(IA32_THERM_STATUS, self._therm_status_hook)

    @property
    def thermal(self) -> "ThermalSimulator":
        if self._thermal is None:
            raise RuntimeError("no thermal simulator attached (call attach_thermal)")
        return self._thermal

    def set_core_load(self, os_core: int, utilization: float) -> None:
        """Set a core's activity level (0 = idle, 1 = full stress)."""
        self.thermal.set_load(self._coord_of(os_core), utilization)

    def advance_time(self, seconds: float) -> None:
        """Let wall-clock time pass (thermal state evolves)."""
        self.thermal.advance(seconds)

    def read_core_temp_c(self, os_core: int) -> int:
        """Temperature of ``os_core`` in whole degrees C, via the MSR path.

        Models the 1 °C-granular sensor of §IV: TjMax minus the
        IA32_THERM_STATUS digital readout.
        """
        status = self._msr.read(os_core, IA32_THERM_STATUS)
        readout = (status >> 16) & 0x7F
        tjmax = decode_temperature_target(self._msr.read(os_core, MSR_TEMPERATURE_TARGET))
        return tjmax - readout

    def _therm_status_hook(self, os_cpu: int, addr: int) -> int:
        temp = self.thermal.sensor_temp_c(
            self._coord_of(os_cpu),
            noise_sigma=self.noise.sensor_noise_sigma,
            rng=self._rng,
        )
        tjmax = self.instance.sku.tjmax
        readout = max(0, min(127, tjmax - temp))
        return encode_therm_status(readout)
