"""The simulated bare-metal machine.

This is the boundary between the attacker's tool and the hidden hardware:
the mapping pipeline (:mod:`repro.core`) and the covert channel
(:mod:`repro.covert`) receive a :class:`SimulatedMachine` and may only call
its public methods — none of which leak tile coordinates.

Thermal behaviour is attached lazily (``attach_thermal``) because the
mapping experiments do not need it.
"""

from __future__ import annotations

import tempfile
from typing import TYPE_CHECKING

from repro.cache.eviction import addresses_in_l2_set
from repro.cache.address import random_line_addresses
from repro.msr.constants import (
    IA32_THERM_STATUS,
    MSR_PPIN,
    MSR_TEMPERATURE_TARGET,
    decode_temperature_target,
    encode_therm_status,
)
from repro.msr.device import MsrDevice
from repro.msr.simfs import FileBackedMsrDevice, MsrFileTree
from repro.platform.instance import CpuInstance
from repro.sim.threads import ContendedWrite, EvictionSweep, ProducerConsumer, Workload
from repro.sim.workload import NoiseConfig
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.thermal.rc_model import ThermalSimulator


class SimulatedMachine:
    """A bare-metal instance as the attacker's tool sees it."""

    def __init__(
        self,
        instance: CpuInstance,
        noise: NoiseConfig | None = None,
        msr_backend: str = "memory",
        msr_root: str | None = None,
        seed: int = 0,
    ):
        self.instance = instance
        self.noise = noise if noise is not None else NoiseConfig()
        self._rng = derive_rng(seed, "machine", instance.ppin)
        self._thermal: "ThermalSimulator | None" = None

        if msr_backend == "memory":
            self._msr: MsrDevice = instance.registers
        elif msr_backend == "file":
            root = msr_root or tempfile.mkdtemp(prefix="repro-msr-")
            tree = MsrFileTree(root, instance.registers, instance.tracked_msr_addrs())
            self._msr = FileBackedMsrDevice(tree)
        else:
            raise ValueError(f"unknown msr backend {msr_backend!r}")

    # -- attacker-visible basics ----------------------------------------------
    @property
    def msr(self) -> MsrDevice:
        """Root MSR access (the only privileged interface the tool needs)."""
        return self._msr

    @property
    def n_os_cores(self) -> int:
        return self.instance.n_os_cores

    def os_cores(self) -> list[int]:
        return list(range(self.n_os_cores))

    @property
    def n_chas(self) -> int:
        """CHA count — discoverable on real hardware from CAPID registers."""
        return self.instance.n_chas

    def read_ppin(self) -> int:
        return self._msr.read(0, MSR_PPIN)

    # -- memory services (what mmap/hugepages give the attacker) ----------------
    def sample_line_addresses(self, count: int) -> list[int]:
        """Line addresses of a freshly allocated buffer (random placement)."""
        return random_line_addresses(self._rng, count)

    def sample_lines_in_l2_set(self, l2_set: int, count: int) -> list[int]:
        """Same-L2-set line addresses (hugepage-backed allocation makes the
        physical set bits attacker-controllable on real hardware)."""
        return addresses_in_l2_set(self.instance.l2, l2_set, self._rng, count)

    @property
    def l2_geometry(self):
        """Public L2 geometry (documented per CPU model)."""
        return self.instance.l2

    # -- pinned workloads ----------------------------------------------------------
    def execute(self, workload: Workload) -> None:
        """Run one pinned workload to completion (with co-tenant noise)."""
        self._inject_noise()
        if isinstance(workload, EvictionSweep):
            core = self._coord_of(workload.os_core)
            self.instance.cache.sweep_evictions(core, list(workload.addresses), workload.sweeps)
        elif isinstance(workload, ContendedWrite):
            a = self._coord_of(workload.os_core_a)
            b = self._coord_of(workload.os_core_b)
            self.instance.cache.contended_write(a, b, workload.address, workload.rounds)
        elif isinstance(workload, ProducerConsumer):
            src = self._coord_of(workload.source)
            sink = self._coord_of(workload.sink)
            self.instance.cache.producer_consumer(src, sink, workload.address, workload.rounds)
        else:
            raise TypeError(f"unknown workload type {type(workload).__name__}")
        self._inject_noise()

    def idle_window(self) -> None:
        """Let a measurement window pass with no attacker workload.

        Co-tenant traffic still flows; the tool uses such windows to
        calibrate its noise floor before thresholding probe readings.
        """
        self._inject_noise()
        self._inject_noise()

    def _coord_of(self, os_core: int):
        if not 0 <= os_core < self.n_os_cores:
            raise ValueError(f"cannot pin a thread to non-existent core {os_core}")
        return self.instance.coord_of_os_core(os_core)

    def _inject_noise(self) -> None:
        if self.noise.mesh_flows_per_op:
            self.instance.mesh.inject_background(
                self._rng, self.noise.mesh_flows_per_op, self.noise.mesh_lines_per_flow
            )

    # -- thermal interface ---------------------------------------------------------
    def attach_thermal(self, thermal: "ThermalSimulator") -> None:
        """Wire a thermal simulator into the machine (and its MSR space)."""
        self._thermal = thermal
        self.instance.registers.install_read_hook(IA32_THERM_STATUS, self._therm_status_hook)

    @property
    def thermal(self) -> "ThermalSimulator":
        if self._thermal is None:
            raise RuntimeError("no thermal simulator attached (call attach_thermal)")
        return self._thermal

    def set_core_load(self, os_core: int, utilization: float) -> None:
        """Set a core's activity level (0 = idle, 1 = full stress)."""
        self.thermal.set_load(self._coord_of(os_core), utilization)

    def advance_time(self, seconds: float) -> None:
        """Let wall-clock time pass (thermal state evolves)."""
        self.thermal.advance(seconds)

    def read_core_temp_c(self, os_core: int) -> int:
        """Temperature of ``os_core`` in whole degrees C, via the MSR path.

        Models the 1 °C-granular sensor of §IV: TjMax minus the
        IA32_THERM_STATUS digital readout.
        """
        status = self._msr.read(os_core, IA32_THERM_STATUS)
        readout = (status >> 16) & 0x7F
        tjmax = decode_temperature_target(self._msr.read(os_core, MSR_TEMPERATURE_TARGET))
        return tjmax - readout

    def _therm_status_hook(self, os_cpu: int, addr: int) -> int:
        temp = self.thermal.sensor_temp_c(
            self._coord_of(os_cpu),
            noise_sigma=self.noise.sensor_noise_sigma,
            rng=self._rng,
        )
        tjmax = self.instance.sku.tjmax
        readout = max(0, min(127, tjmax - temp))
        return encode_therm_status(readout)
