"""Convenience assembly of a fully equipped simulated machine."""

from __future__ import annotations

from repro.platform.instance import CpuInstance
from repro.platform.skus import SkuSpec
from repro.sim.machine import SimulatedMachine
from repro.sim.workload import NoiseConfig
from repro.thermal.power import PowerModel
from repro.thermal.rc_model import ThermalParams, ThermalSimulator
from repro.thermal.sensors import SensorModel
from repro.util.rng import derive_rng


def build_machine(
    instance: CpuInstance,
    seed: int = 0,
    noise: NoiseConfig | None = None,
    thermal_params: ThermalParams | None = None,
    power_model: PowerModel | None = None,
    sensor: SensorModel | None = None,
    msr_backend: str = "memory",
    msr_root: str | None = None,
    with_thermal: bool = True,
) -> SimulatedMachine:
    """Build a :class:`SimulatedMachine` with thermal simulation attached.

    ``sensor`` overrides the temperature-sensor model — used by the §IV
    defense ablation (coarser quantisation / slower update rate).
    """
    machine = SimulatedMachine(
        instance,
        noise=noise,
        msr_backend=msr_backend,
        msr_root=msr_root,
        seed=seed,
    )
    if with_thermal:
        thermal = ThermalSimulator(
            instance.sku.die.grid,
            instance.kind_grid(),
            params=thermal_params,
            power_model=power_model,
            power_noise_sigma=machine.noise.thermal_power_sigma,
            sensor=sensor,
            rng=derive_rng(seed, "thermal", instance.ppin),
        )
        machine.attach_thermal(thermal)
    return machine


def build_machine_for_sku(
    sku: SkuSpec, instance_seed: int, machine_seed: int = 0, **kwargs
) -> SimulatedMachine:
    """Generate an instance of ``sku`` and wrap it in a machine."""
    return build_machine(CpuInstance.generate(sku, instance_seed), machine_seed, **kwargs)
