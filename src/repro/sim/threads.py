"""Pinned worker-thread workload descriptions.

The paper's probes are pairs of user-level threads pinned to OS cores that
hammer memory in specific patterns (§II-A, §II-B). Each dataclass describes
one such workload; :meth:`repro.sim.machine.SimulatedMachine.execute`
realises it as mesh/cache traffic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EvictionSweep:
    """A thread on ``os_core`` repeatedly walking a slice eviction set.

    With more lines than the L2 associativity, every sweep forces evictions
    to (and refills from) the targeted LLC slice — the step-1 probe.
    """

    os_core: int
    addresses: tuple[int, ...]
    sweeps: int = 200

    def __post_init__(self) -> None:
        if self.sweeps <= 0:
            raise ValueError("sweeps must be positive")
        if not self.addresses:
            raise ValueError("an eviction sweep needs at least one address")


@dataclass(frozen=True)
class ContendedWrite:
    """Two pinned threads simultaneously writing one cache line.

    The home CHA of the line arbitrates every ownership change, so its
    LLC_LOOKUP count stands out — the §II-A home-slice discovery probe.
    """

    os_core_a: int
    os_core_b: int
    address: int
    rounds: int = 500

    def __post_init__(self) -> None:
        if self.os_core_a == self.os_core_b:
            raise ValueError("contended writes need two distinct cores")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")


@dataclass(frozen=True)
class ProducerConsumer:
    """Writer pinned to ``source``, reader pinned to ``sink``, one line.

    The modified line travels source tile → sink tile across the mesh on
    every round — the §II-B step-2 traffic generator.
    """

    source: int
    sink: int
    address: int
    rounds: int = 1000

    def __post_init__(self) -> None:
        if self.source == self.sink:
            raise ValueError("producer and consumer must be distinct cores")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")


Workload = EvictionSweep | ContendedWrite | ProducerConsumer
