"""``repro-map``: map CPUs and maintain a PPIN-keyed map database.

Subcommands:

* ``map``   — run the full §II pipeline against a (simulated) machine and
  store the result: ``repro-map map --sku 8259CL --instance-seed 7 --db maps.json``
* ``show``  — render a stored map: ``repro-map show --db maps.json --ppin 0x…``
* ``list``  — enumerate stored PPINs with summary info.
* ``survey`` — map a whole seeded fleet through the survey engine:
  ``repro-map survey --sku 8259CL -n 8 --workers 4 --db maps.json``
  (slots whose PPIN is already in the database are served from cache).
  ``--keep-going`` isolates failing slots into failure records instead of
  aborting; ``--chaos K`` injects a deterministic fault plan into K slots
  (a resilience drill):
  ``repro-map survey -n 8 --chaos 3 --keep-going --resilient --db maps.json``
  ``--trace-out spans.jsonl`` / ``--metrics-out metrics.prom`` export the
  run's telemetry (JSONL spans / Prometheus text exposition).

  With ``--store DIR`` the survey runs through the crash-safe sharded
  service instead of a monolithic ``--db``: ``--shard i/N`` picks this
  process's deterministic slice of the fleet, every finished slot is
  fsync'd into an append-only segment store and journaled, and
  ``--resume`` continues a killed run from its journal:
  ``repro-map survey -n 1000 --store fleet/ --shard 0/4 --resume``
* ``supervise`` — run a whole N-shard fleet under the lease-based
  supervisor: shard workers are subprocesses, heartbeat-monitored, and
  dead/wedged owners are SIGKILLed and reassigned (resuming from the
  journal, byte-identically); deterministically crashing slots are
  quarantined as ``poisoned``; SIGTERM drains the fleet gracefully:
  ``repro-map supervise --sku 8259CL -n 64 --store fleet/ --shards 4 --workers 2``
* ``merge`` — combine shard stores into one canonical database and flag
  gaps: ``repro-map merge --store fleet/ --out maps.json``
* ``place`` — solve a neighbor-aware placement (ROADMAP item 5) over the
  recovered maps of a fleet: covert sender/receiver pair selection
  (``--pairs K --objective coupling|hops``) or weighted co-tenant job
  scheduling (``--jobs web:3,db:2``), ranked across instances, with the
  same ``--solver`` surface as ``survey``:
  ``repro-map place --store fleet/ --pairs 1 --solver portfolio``
* ``stats`` — validate exported telemetry and summarise it (including
  ``supervisor_*`` counters and per-shard takeover counts when present):
  ``repro-map stats --trace spans.jsonl --metrics metrics.prom``

The simulated machine stands in for a bare-metal instance; on real
hardware the same flow would run against the hardware MSR backend.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.core.errors import SurveyAbortedError
from repro.core.pipeline import MappingConfig, RetryPolicy, map_cpu
from repro.faults.crashpoints import (
    HeartbeatFreezePoint,
    SlotCrashPoint,
    StallPoint,
    WriteCrashPoint,
)
from repro.faults.plan import chaos_plan
from repro.ilp import available_backends, backend_available, backend_names
from repro.placement import JobSpec, place_over_fleet
from repro.platform.instance import CpuInstance
from repro.platform.skus import SKU_CATALOG
from repro.sim.factory import build_machine
from repro.store.database import MapDatabase
from repro.store.lease import LeaseHeartbeat, ShardLease
from repro.store.segments import MANIFEST_NAME, SegmentStoreError
from repro.survey import (
    CircuitBreaker,
    FailureBudget,
    FleetSupervisor,
    ShardSpec,
    SupervisorDrill,
    SurveyRunner,
    SurveyService,
    merge_shard_stores,
)
from repro.survey.supervisor import EXIT_LEASE_LOST
from repro.telemetry import Tracer
from repro.telemetry.aggregate import aggregate_spans
from repro.telemetry.exporters import (
    METRIC_PREFIX,
    TelemetrySchemaError,
    parse_prometheus_samples,
    validate_prometheus_text,
    validate_trace_jsonl,
    write_metrics_text,
    write_trace_jsonl,
)
from repro.util.tables import format_table


def _add_solver_argument(parser: argparse.ArgumentParser, purpose: str) -> None:
    """The one ``--solver`` surface shared by ``survey`` and ``place``.

    Choices come from the live backend registry, so a newly registered
    backend is selectable everywhere without touching the CLI.
    """
    parser.add_argument(
        "--solver",
        choices=tuple(backend_names()),
        default=None,
        help=f"MILP backend for {purpose} (default: highs; "
        "'portfolio' races every installed exact backend)",
    )


def _check_solver(name: str | None) -> bool:
    """Availability gate behind every ``--solver`` flag; prints the hint."""
    if name is None or backend_available(name):
        return True
    print(
        f"solver backend {name!r} is not available on this host "
        f"(installed: {', '.join(available_backends())}); "
        "the cbc backend needs `pip install .[cbc]`",
        file=sys.stderr,
    )
    return False


def _cmd_map(args: argparse.Namespace) -> int:
    sku = SKU_CATALOG.get(args.sku)
    if sku is None:
        print(f"unknown SKU {args.sku!r}; choose from {sorted(SKU_CATALOG)}", file=sys.stderr)
        return 2
    instance = CpuInstance.generate(sku, args.instance_seed)
    machine = build_machine(
        instance,
        seed=args.machine_seed,
        msr_backend=args.msr_backend,
        with_thermal=False,
    )
    print(f"mapping Xeon {sku.name} instance (seed {args.instance_seed})...")
    result = map_cpu(machine)
    db = MapDatabase(args.db)
    db.store(result)
    db.save()
    print(f"PPIN {result.ppin:#018x} stored in {args.db} "
          f"({result.elapsed_seconds:.1f}s, "
          f"{result.reconstruction.refinement_cuts} refinement rounds)")
    print(result.core_map.render())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    db = MapDatabase(args.db)
    ppin = int(args.ppin, 0)
    try:
        record = db.record(ppin)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 1
    core_map = db.lookup(ppin)
    diag = record["diagnostics"]
    print(f"PPIN {args.ppin}: {len(core_map.os_to_cha)} cores, "
          f"{len(core_map.llc_only_chas)} LLC-only CHAs, "
          f"consistent={diag['consistent']}")
    print(core_map.render())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    db = MapDatabase(args.db)
    rows = []
    for ppin in db.ppins():
        record = db.record(ppin)
        core_map = db.lookup(ppin)
        rows.append(
            [
                f"{ppin:#018x}",
                len(core_map.os_to_cha),
                len(core_map.llc_only_chas),
                record["diagnostics"]["refinement_cuts"],
                "yes" if record["diagnostics"]["consistent"] else "NO",
            ]
        )
    if not rows:
        print(f"{args.db}: empty database")
        return 0
    print(format_table(["PPIN", "cores", "LLC-only", "refinements", "consistent"], rows))
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    if args.sku not in SKU_CATALOG:
        print(f"unknown SKU {args.sku!r}; choose from {sorted(SKU_CATALOG)}", file=sys.stderr)
        return 2
    if args.workers < 1 or args.instances < 0:
        print("--workers must be >= 1 and --instances >= 0", file=sys.stderr)
        return 2
    if args.store and args.db:
        print("--store (sharded service) and --db (monolithic) are exclusive", file=sys.stderr)
        return 2
    if not args.store and (args.resume or args.shard != "0/1" or args.crash_at_write):
        print("--shard/--resume/--crash-at-write require --store", file=sys.stderr)
        return 2
    if args.supervised and not args.store:
        print("--supervised requires --store", file=sys.stderr)
        return 2
    if args.supervised and (not args.lease_owner or args.lease_epoch < 1):
        print("--supervised requires --lease-owner and --lease-epoch >= 1", file=sys.stderr)
        return 2
    if not args.supervised and (args.lease_owner or args.lease_epoch):
        print("--lease-owner/--lease-epoch require --supervised", file=sys.stderr)
        return 2
    if not args.store and (args.drill_stall_after or args.drill_crash_slot is not None):
        print("--drill-stall-after/--drill-crash-slot require --store", file=sys.stderr)
        return 2
    if not args.supervised and (args.drill_freeze_after or args.quarantine):
        print("--drill-freeze-after/--quarantine require --supervised", file=sys.stderr)
        return 2
    try:
        shard = ShardSpec.parse(args.shard)
        budget = FailureBudget(
            max_failures=args.max_failures,
            max_failure_fraction=args.max_failure_ratio,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not _check_solver(args.solver):
        return 2
    db = MapDatabase(args.db) if args.db else None
    faults = chaos_plan(args.instances, args.chaos, seed=args.chaos_seed) if args.chaos else None
    tracer = Tracer() if (args.trace_out or args.metrics_out) else None
    config = None
    if args.resilient or args.solver:
        config = MappingConfig(
            retry=RetryPolicy() if args.resilient else None,
            solver=args.solver,
        )
    runner = SurveyRunner(
        db=db,
        workers=args.workers,
        root_seed=args.root_seed,
        config=config,
        faults=faults,
        # The sharded service treats slot failure as survivable by
        # default — the failure budget is what bounds it.
        keep_going=args.keep_going or bool(args.store),
        failure_budget=budget,
        slot_attempts=args.retries,
        slot_timeout=args.timeout,
        flush_every=args.flush_every,
        tracer=tracer,
    )
    if args.store:
        # Durable-write hooks compose: the kill drill and the stall drill
        # may both be armed (a "hung host" is a stall + frozen heart).
        write_hooks = []
        if args.crash_at_write:
            write_hooks.append(WriteCrashPoint(args.crash_at_write))
        if args.drill_stall_after:
            write_hooks.append(StallPoint(args.drill_stall_after))
        on_write = None
        if write_hooks:
            on_write = lambda: [hook() for hook in write_hooks]  # noqa: E731
        service = SurveyService(
            args.store,
            shard=shard,
            runner=runner,
            on_write=on_write,
        )

        heartbeat = None
        quarantined: dict[int, str] = {}
        resume = args.resume
        if args.supervised:
            # The supervisor already acquired the lease (bumping its
            # epoch); this worker only beats with the grant it was handed.
            heartbeat = LeaseHeartbeat(
                ShardLease(service.shard_dir),
                owner=args.lease_owner,
                epoch=args.lease_epoch,
                interval=args.heartbeat_interval,
                on_beat=(
                    HeartbeatFreezePoint(args.drill_freeze_after)
                    if args.drill_freeze_after
                    else None
                ),
            )
            for part in (args.quarantine or "").split(","):
                if part.strip():
                    quarantined[int(part)] = (
                        "slot quarantined by the fleet supervisor after "
                        "repeated worker crashes"
                    )
            # Takeover incarnations resume implicitly; the supervisor does
            # not track which incarnation is the first.
            resume = resume or (service.shard_dir / MANIFEST_NAME).exists()

        draining = False

        def _on_sigterm(signum, frame):  # pragma: no cover - signal path
            nonlocal draining
            draining = True

        prior_handler = signal.signal(signal.SIGTERM, _on_sigterm)
        slot_started = (
            SlotCrashPoint(args.drill_crash_slot)
            if args.drill_crash_slot is not None
            else None
        )
        try:
            shard_report = service.run(
                args.sku,
                args.instances,
                resume=resume,
                quarantined=quarantined,
                stop=lambda: draining,
                heartbeat=heartbeat,
                slot_started=slot_started,
            )
        except SurveyAbortedError as exc:
            print(f"shard {shard} ABORTED: {exc}", file=sys.stderr)
            print(f"(recorded in {service.shard_dir}/manifest.json)", file=sys.stderr)
            return 1
        except SegmentStoreError as exc:
            print(exc, file=sys.stderr)
            return 1
        finally:
            signal.signal(signal.SIGTERM, prior_handler)
        if heartbeat is not None and heartbeat.lost:
            print(
                f"shard {shard}: lease fenced away mid-run; stopped cleanly",
                file=sys.stderr,
            )
            return EXIT_LEASE_LOST
        report = shard_report.report
        print(
            f"shard {shard}: {shard_report.n_prior_done + shard_report.n_prior_failed} "
            f"slots already journaled ({shard_report.n_prior_failed} failed, "
            f"{shard_report.n_prior_poisoned} poisoned), "
            f"{report.n_instances} dispatched this run -> {shard_report.state}; "
            f"store: {shard_report.store_path}"
        )
    else:
        report = runner.survey(args.sku, args.instances)

    print(
        f"{report.sku}: {report.n_instances} instances in {report.wall_seconds:.1f}s "
        f"({report.instances_per_minute:.1f}/min) — "
        f"{report.n_mapped} mapped, {report.n_cached} from cache, "
        f"{report.n_failed} failed, {report.n_recovered} recovered, "
        f"{report.n_matching_truth}/{report.n_instances} match ground truth"
    )
    if report.n_failed:
        fail_rows = [
            [o.index, o.error, o.attempts, (o.error_message or "")[:60]]
            for o in report.failed_outcomes()
        ]
        print(format_table(["slot", "error", "attempts", "detail"], fail_rows))
    rows = [
        [
            report.sku,
            report.n_instances,
            len(report.id_mappings),
            len(report.patterns),
            f"{report.patterns.most_common(1)[0][1]}/{report.n_instances}"
            if report.patterns
            else "-",
        ]
    ]
    print(
        format_table(
            ["CPU model", "instances", "unique OS<->CHA maps", "unique patterns", "top pattern"],
            rows,
        )
    )
    aggregates = report.stage_aggregates()
    if aggregates:
        stage_rows = [
            [agg.stage, f"{agg.total_seconds:.2f}s", f"{agg.mean_seconds:.2f}s"]
            for agg in aggregates.values()
        ]
        print(format_table(["stage", "total", "mean/instance"], stage_rows))
    if report.telemetry is not None:
        if args.trace_out:
            n_spans = write_trace_jsonl(report.telemetry, args.trace_out)
            print(f"{n_spans} spans written to {args.trace_out}")
        if args.metrics_out:
            n_samples = write_metrics_text(report.telemetry, args.metrics_out)
            print(f"{n_samples} metric samples written to {args.metrics_out}")
    if db is not None:
        print(f"{len(db)} maps stored in {args.db}")
    return 0


def _parse_jobs(spec: str) -> list[JobSpec]:
    """Parse ``name[:weight],name[:weight],…`` into :class:`JobSpec` list."""
    jobs = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, weight = part.rsplit(":", 1)
            jobs.append(JobSpec(name.strip(), int(weight)))
        else:
            jobs.append(JobSpec(part))
    if not jobs:
        raise ValueError("--jobs is empty")
    return jobs


def _cmd_place(args: argparse.Namespace) -> int:
    if bool(args.db) == bool(args.store):
        print("place needs exactly one of --db or --store", file=sys.stderr)
        return 2
    if not _check_solver(args.solver):
        return 2
    try:
        jobs = _parse_jobs(args.jobs) if args.jobs else None
        cores = (
            [int(c) for c in args.cores.split(",")] if args.cores else None
        )
    except ValueError as exc:
        print(f"bad --jobs/--cores: {exc}", file=sys.stderr)
        return 2

    from repro.placement import load_fleet_maps

    try:
        maps = load_fleet_maps(args.db or args.store)
    except (FileNotFoundError, SegmentStoreError) as exc:
        print(exc, file=sys.stderr)
        return 1
    if args.ppin:
        ppin = int(args.ppin, 0)
        if ppin not in maps:
            known = ", ".join(f"{p:#x}" for p in sorted(maps))
            print(f"no map for PPIN {args.ppin} (stored: {known})", file=sys.stderr)
            return 1
        maps = {ppin: maps[ppin]}
    if not maps:
        print("the fleet source holds no recovered maps", file=sys.stderr)
        return 1

    tracer = Tracer() if (args.trace_out or args.metrics_out) else None
    from repro.core.errors import PlacementInfeasible

    try:
        fleet = place_over_fleet(
            maps,
            jobs=jobs,
            n_pairs=args.pairs,
            objective=args.objective,
            max_hops=args.max_hops,
            allowed_cores=cores,
            solver=args.solver,
            tracer=tracer,
        )
        best_ppin, best = fleet.best
    except PlacementInfeasible as exc:
        print(f"placement infeasible: {exc}", file=sys.stderr)
        return 1

    if fleet.kind == "pairs":
        rows = [
            [
                f"{ppin:#x}",
                str(result.objective_value),
                ", ".join(f"{p.sender}->{p.receiver}" for p in result.pairs),
                ", ".join(f"{p.hops}h {p.orientation}" for p in result.pairs),
                "best" if ppin == best_ppin else "",
            ]
            for ppin, result in fleet.results
        ]
        print(format_table(
            ["ppin", "benefit", "pairs (os cores)", "route", ""], rows
        ))
        unit = "uK/W" if args.objective == "coupling" else "score"
        top = best.best_pair()
        print(
            f"best instance {best_ppin:#x}: core {top.sender} -> core "
            f"{top.receiver} ({top.hops} hop {top.orientation}, "
            f"{top.benefit} {unit}; total {best.objective_value})"
        )
    else:
        rows = [
            [
                f"{ppin:#x}",
                str(result.max_link_load),
                str(result.total_weighted_hops),
                "best" if ppin == best_ppin else "",
            ]
            for ppin, result in fleet.results
        ]
        print(format_table(["ppin", "max link load", "weighted hops", ""], rows))
        assign_rows = [
            [a.job, str(a.os_core), f"({a.row},{a.col})"]
            for a in best.assignment
        ]
        print(format_table(["job", "os core", "tile"], assign_rows))
        print(
            f"best instance {best_ppin:#x}: max link load "
            f"{best.max_link_load}, total weighted hops "
            f"{best.total_weighted_hops}"
        )
    if fleet.infeasible:
        shown = ", ".join(f"{p:#x}" for p in fleet.infeasible)
        print(f"infeasible on {len(fleet.infeasible)} instance(s): {shown}")

    if tracer is not None:
        if args.trace_out:
            write_trace_jsonl(tracer.snapshot(), args.trace_out)
        if args.metrics_out:
            write_metrics_text(tracer.snapshot(), args.metrics_out)
    return 0


def _cmd_supervise(args: argparse.Namespace) -> int:
    if args.sku not in SKU_CATALOG:
        print(f"unknown SKU {args.sku!r}; choose from {sorted(SKU_CATALOG)}", file=sys.stderr)
        return 2
    drill = SupervisorDrill(
        kill_shard=args.drill_kill_shard,
        kill_at_write=args.drill_kill_at_write,
        hang_shard=args.drill_hang_shard,
        hang_after_beats=args.drill_hang_after_beats,
        hang_after_writes=args.drill_hang_after_writes,
        stall_shard=args.drill_stall_shard,
        stall_after_writes=args.drill_stall_after_writes,
        poison_slot=args.drill_poison_slot,
    )
    tracer = Tracer()
    try:
        supervisor = FleetSupervisor(
            args.store,
            args.sku,
            args.instances,
            shards=args.shards,
            workers=args.workers,
            root_seed=args.root_seed,
            resilient=args.resilient,
            lease_ttl=args.lease_ttl,
            stall_deadline=args.stall_deadline,
            heartbeat_interval=args.heartbeat_interval,
            poll_interval=args.poll_interval,
            poison_after=args.poison_after,
            max_takeovers=args.max_takeovers,
            max_failures=args.max_failures,
            max_failure_ratio=args.max_failure_ratio,
            breaker=CircuitBreaker(
                max_shard_failures=args.breaker_shard_failures,
                max_worker_crashes=args.breaker_worker_crashes,
            ),
            tracer=tracer,
            drill=drill,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    prior_handler = signal.signal(
        signal.SIGTERM, lambda signum, frame: supervisor.request_drain()
    )
    try:
        fleet = supervisor.run()
    finally:
        signal.signal(signal.SIGTERM, prior_handler)

    rows = [
        [
            outcome.shard,
            outcome.state,
            outcome.incarnations,
            outcome.takeovers,
            ", ".join(map(str, outcome.poisoned_slots)) or "-",
        ]
        for outcome in fleet.shards
    ]
    print(
        format_table(
            ["shard", "state", "incarnations", "takeovers", "poisoned slots"],
            rows,
            title=f"Fleet {fleet.sku} x{fleet.n_instances} -> {fleet.state} "
                  f"({fleet.wall_seconds:.1f}s)",
        )
    )
    for outcome in fleet.shards:
        for event in outcome.events:
            print(f"  shard {outcome.shard}: {event}")
    if args.metrics_out:
        n_samples = write_metrics_text(tracer.snapshot(), args.metrics_out)
        print(f"{n_samples} metric samples written to {args.metrics_out}")
    if args.out:
        if fleet.completed:
            merge = supervisor.merge(args.out)
            print(
                f"merged {merge.n_shards} shard stores -> {merge.out_path} "
                f"({merge.n_records} maps, {len(merge.failed_slots)} failed, "
                f"{len(merge.poisoned_slots)} poisoned slots)"
            )
        else:
            print(
                f"fleet ended {fleet.state}; skipping merge "
                f"(re-run supervise to finish, then repro-map merge)",
                file=sys.stderr,
            )
    if fleet.completed or fleet.state == "drained":
        return 0
    return 1


def _cmd_merge(args: argparse.Namespace) -> int:
    try:
        report = merge_shard_stores(args.store, args.out)
    except SegmentStoreError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(
        f"merged {report.n_shards} shard stores -> {report.out_path} "
        f"({report.n_records} maps)"
    )
    if report.failed_slots:
        print(f"{len(report.failed_slots)} slots failed terminally: "
              f"{', '.join(map(str, report.failed_slots[:10]))}"
              f"{', …' if len(report.failed_slots) > 10 else ''}")
    if not report.complete:
        print(f"INCOMPLETE — {report.gaps()}", file=sys.stderr)
        if not args.allow_gaps:
            print("(pass --allow-gaps to accept a partial fleet)", file=sys.stderr)
            return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if not args.trace and not args.metrics:
        print("provide --trace and/or --metrics", file=sys.stderr)
        return 2
    if args.trace:
        text = Path(args.trace).read_text(encoding="utf-8")
        try:
            n_spans = validate_trace_jsonl(text)
        except TelemetrySchemaError as exc:
            print(f"{args.trace}: INVALID — {exc}", file=sys.stderr)
            return 1
        records = [json.loads(line) for line in text.splitlines() if line.strip()]
        print(f"{args.trace}: {n_spans} spans, schema valid")
        rows = [
            [
                agg.name,
                agg.count,
                f"{agg.total_seconds:.3f}s",
                f"{agg.mean_seconds * 1e3:.2f}ms",
                f"{agg.min_seconds * 1e3:.2f}ms",
                f"{agg.max_seconds * 1e3:.2f}ms",
            ]
            for agg in aggregate_spans(records).values()
        ]
        print(format_table(["span", "count", "total", "mean", "min", "max"], rows))
    if args.metrics:
        text = Path(args.metrics).read_text(encoding="utf-8")
        try:
            n_samples = validate_prometheus_text(text)
        except TelemetrySchemaError as exc:
            print(f"{args.metrics}: INVALID — {exc}", file=sys.stderr)
            return 1
        print(f"{args.metrics}: {n_samples} samples, exposition valid")
        sup_prefix = METRIC_PREFIX + "supervisor_"
        supervisor_samples = [
            (name, labels, value)
            for name, labels, value in parse_prometheus_samples(text)
            if name.startswith(sup_prefix)
        ]
        if supervisor_samples:
            rows = [
                [
                    name[len(METRIC_PREFIX):],
                    ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-",
                    f"{value:g}",
                ]
                for name, labels, value in supervisor_samples
            ]
            print(format_table(["supervisor counter", "labels", "value"], rows))
            takeovers: dict[str, float] = {}
            for name, labels, value in supervisor_samples:
                if name == sup_prefix + "takeovers_total" and "shard" in labels:
                    takeovers[labels["shard"]] = takeovers.get(labels["shard"], 0) + value
            if takeovers:
                print(
                    format_table(
                        ["shard", "takeovers"],
                        [[shard, f"{n:g}"] for shard, n in sorted(takeovers.items())],
                    )
                )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchRegressionError,
        append_record,
        check_regression,
        latest_record,
        run_bench,
    )

    try:
        record = run_bench(
            sku=args.sku, fleet_size=args.fleet_size, root_seed=args.root_seed
        )
    except (KeyError, ValueError, RuntimeError, AssertionError) as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 2
    rows = [
        ["legacy paths", f"{record['legacy_instances_per_minute']:.1f}", ""],
        [
            "optimized, cold caches",
            f"{record['optimized_cold_instances_per_minute']:.1f}",
            f"{record['speedup_cold']:.2f}x",
        ],
        [
            "optimized, warm caches",
            f"{record['optimized_warm_instances_per_minute']:.1f}",
            f"{record['speedup_warm']:.2f}x",
        ],
    ]
    print(format_table(["configuration", "instances/min", "speedup"], rows,
                       title=f"Survey throughput ({record['sku']}, "
                             f"fleet of {record['fleet_size']}, bit-identical)"))
    span_rows = [
        [name, stats["count"], f"{stats['p50_seconds'] * 1e3:.1f}ms",
         f"{stats['p95_seconds'] * 1e3:.1f}ms"]
        for name, stats in record["spans"].items()
    ]
    print(format_table(["span", "count", "p50", "p95"], span_rows,
                       title="Pipeline span costs (optimized, cold)"))
    if "solver_speedup" in record:
        solver_rows = [
            ["default backend",
             f"{record['solver_default_solve_seconds'] * 1e3:.1f}ms", ""],
            ["portfolio",
             f"{record['solver_portfolio_solve_seconds'] * 1e3:.1f}ms",
             f"{record['solver_speedup']:.2f}x"],
        ]
        print(format_table(["solver", "fleet solve time", "speedup"], solver_rows,
                           title="Solver portfolio (warm starts off)"))

    baseline = latest_record(args.out)
    try:
        check_regression(record, baseline, max_regression=args.max_regression)
    except BenchRegressionError as exc:
        print(f"REGRESSION: {exc}", file=sys.stderr)
        return 1
    if baseline is not None:
        print(f"no regression vs committed baseline ({baseline['commit']}: "
              f"cold {baseline['speedup_cold']:.2f}x, warm {baseline['speedup_warm']:.2f}x)")
    if args.no_append:
        return 0
    append_record(args.out, record)
    print(f"record appended to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-map", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="map one CPU instance and store the result")
    p_map.add_argument("--sku", default="8259CL", help="CPU model (catalogue name)")
    p_map.add_argument("--instance-seed", type=int, default=0, help="which simulated instance")
    p_map.add_argument("--machine-seed", type=int, default=0)
    p_map.add_argument("--msr-backend", choices=("memory", "file"), default="memory")
    p_map.add_argument("--db", required=True, help="map database JSON path")
    p_map.set_defaults(func=_cmd_map)

    p_show = sub.add_parser("show", help="render one stored map")
    p_show.add_argument("--db", required=True)
    p_show.add_argument("--ppin", required=True, help="PPIN (hex or decimal)")
    p_show.set_defaults(func=_cmd_show)

    p_list = sub.add_parser("list", help="list stored maps")
    p_list.add_argument("--db", required=True)
    p_list.set_defaults(func=_cmd_list)

    p_survey = sub.add_parser("survey", help="map a seeded fleet through the survey engine")
    p_survey.add_argument("--sku", default="8259CL", help="CPU model (catalogue name)")
    p_survey.add_argument("-n", "--instances", type=int, default=8, help="fleet size")
    p_survey.add_argument("--workers", type=int, default=1, help="worker processes")
    p_survey.add_argument("--root-seed", type=int, default=0, help="fleet root seed")
    p_survey.add_argument("--db", help="optional PPIN-keyed map database (enables caching)")
    p_survey.add_argument(
        "--keep-going",
        action="store_true",
        help="record failing slots as failures instead of aborting the survey",
    )
    p_survey.add_argument(
        "--max-failures",
        type=int,
        default=None,
        help="abort once this many slots have failed for good (with --keep-going)",
    )
    p_survey.add_argument(
        "--max-failure-ratio",
        type=float,
        default=None,
        metavar="FRAC",
        help="abort once this fraction of the planned slots has failed",
    )
    p_survey.add_argument(
        "--store",
        metavar="DIR",
        help="run through the crash-safe sharded service against this store root",
    )
    p_survey.add_argument(
        "--shard",
        default="0/1",
        metavar="i/N",
        help="this process's deterministic fleet slice (with --store)",
    )
    p_survey.add_argument(
        "--resume",
        action="store_true",
        help="continue a killed/aborted shard from its journal (with --store)",
    )
    p_survey.add_argument(
        "--crash-at-write",
        type=int,
        default=0,
        metavar="N",
        help="chaos drill: SIGKILL this process at the Nth durable store write",
    )
    p_survey.add_argument(
        "--supervised",
        action="store_true",
        help="run as a fleet-supervisor worker: beat the shard lease, honor "
             "fencing, auto-resume takeovers (requires --lease-owner/--lease-epoch)",
    )
    p_survey.add_argument(
        "--lease-owner",
        default="",
        metavar="TOKEN",
        help="owner token the supervisor granted this worker's lease to",
    )
    p_survey.add_argument(
        "--lease-epoch",
        type=int,
        default=0,
        metavar="E",
        help="fencing epoch of this worker's lease grant",
    )
    p_survey.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="seconds between background lease beats (with --supervised)",
    )
    p_survey.add_argument(
        "--quarantine",
        default="",
        metavar="SLOTS",
        help="comma-separated poisoned slot indices to journal without dispatching",
    )
    p_survey.add_argument(
        "--drill-crash-slot",
        type=int,
        default=None,
        metavar="SLOT",
        help="chaos drill: SIGKILL this worker when it starts mapping SLOT",
    )
    p_survey.add_argument(
        "--drill-stall-after",
        type=int,
        default=0,
        metavar="N",
        help="chaos drill: hang after the Nth durable write (wedged worker)",
    )
    p_survey.add_argument(
        "--drill-freeze-after",
        type=int,
        default=0,
        metavar="B",
        help="chaos drill: freeze lease heartbeats after B beats (dead host)",
    )
    p_survey.add_argument(
        "--resilient",
        action="store_true",
        help="enable in-pipeline retries, vote-based re-measurement and ILP degradation",
    )
    _add_solver_argument(p_survey, "the §II-C reconstruction")
    p_survey.add_argument(
        "--retries", type=int, default=2, help="dispatch attempts per slot (first included)"
    )
    p_survey.add_argument(
        "--timeout", type=float, default=None, help="per-slot wall-clock budget in seconds (pool mode)"
    )
    p_survey.add_argument(
        "--flush-every", type=int, default=8, help="persist the database every N fresh maps"
    )
    p_survey.add_argument(
        "--chaos",
        type=int,
        default=0,
        metavar="K",
        help="inject a deterministic fault plan into K fleet slots (resilience drill)",
    )
    p_survey.add_argument("--chaos-seed", type=int, default=0, help="seed of the chaos plan")
    p_survey.add_argument(
        "--trace-out",
        metavar="PATH",
        help="export the survey's telemetry spans as JSONL (enables tracing)",
    )
    p_survey.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="export the survey's counters/gauges as a Prometheus text exposition",
    )
    p_survey.set_defaults(func=_cmd_survey)

    p_place = sub.add_parser(
        "place",
        help="solve a neighbor-aware placement over recovered maps",
        description=(
            "Consume recovered core maps (a --db map database or a --store "
            "segment-store root) and solve a placement ILP on each "
            "instance: covert sender/receiver pair selection by default, "
            "or co-tenant job scheduling with --jobs. Prints the per-"
            "instance ranking and the best instance's placement."
        ),
    )
    p_place.add_argument("--db", help="PPIN-keyed map database JSON")
    p_place.add_argument(
        "--store", help="segment-store root (or one shard directory)"
    )
    p_place.add_argument(
        "--ppin", help="place on this single instance only (hex or decimal)"
    )
    p_place.add_argument(
        "--pairs", type=int, default=1, metavar="K",
        help="select K non-interfering covert pairs (default 1)",
    )
    p_place.add_argument(
        "--objective",
        choices=("coupling", "hops"),
        default="coupling",
        help="pair objective: steady-state thermal coupling (uK/W) or a "
        "hops/orientation score (default: coupling)",
    )
    p_place.add_argument(
        "--max-hops", type=int, default=None, metavar="H",
        help="only consider candidate pairs within H mesh hops",
    )
    p_place.add_argument(
        "--jobs", metavar="NAME:W,...",
        help="schedule these weighted jobs instead of selecting pairs "
        "(e.g. 'web:3,db:2,batch:1')",
    )
    p_place.add_argument(
        "--cores", metavar="C0,C1,...",
        help="restrict placements to these OS cores",
    )
    _add_solver_argument(p_place, "the placement ILP")
    p_place.add_argument(
        "--trace-out", metavar="PATH",
        help="export the placement telemetry spans as JSONL",
    )
    p_place.add_argument(
        "--metrics-out", metavar="PATH",
        help="export the placement counters as a Prometheus text exposition",
    )
    p_place.set_defaults(func=_cmd_place)

    p_sup = sub.add_parser(
        "supervise",
        help="run an N-shard fleet under the lease-based supervisor",
    )
    p_sup.add_argument("--sku", default="8259CL", help="CPU model (catalogue name)")
    p_sup.add_argument("-n", "--instances", type=int, default=8, help="fleet size")
    p_sup.add_argument("--store", required=True, metavar="DIR", help="shard store root")
    p_sup.add_argument("--shards", type=int, default=2, help="fleet shard count")
    p_sup.add_argument(
        "--workers", type=int, default=2, help="concurrent shard worker processes"
    )
    p_sup.add_argument("--root-seed", type=int, default=0, help="fleet root seed")
    p_sup.add_argument(
        "--resilient",
        action="store_true",
        help="workers enable in-pipeline retries and degradation",
    )
    p_sup.add_argument(
        "--lease-ttl",
        type=float,
        default=10.0,
        metavar="SEC",
        help="declare a worker dead when its lease beats stall this long",
    )
    p_sup.add_argument(
        "--stall-deadline",
        type=float,
        default=60.0,
        metavar="SEC",
        help="declare a worker wedged when slot progress stalls this long",
    )
    p_sup.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="lease beat interval handed to workers",
    )
    p_sup.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SEC",
        help="supervisor observation loop period",
    )
    p_sup.add_argument(
        "--poison-after",
        type=int,
        default=3,
        metavar="K",
        help="quarantine a slot after it kills K workers",
    )
    p_sup.add_argument(
        "--max-takeovers",
        type=int,
        default=8,
        metavar="T",
        help="give up on a shard after T takeovers",
    )
    p_sup.add_argument(
        "--max-failures",
        type=int,
        default=None,
        help="per-shard failure budget: absolute failed-slot cap",
    )
    p_sup.add_argument(
        "--max-failure-ratio",
        type=float,
        default=None,
        metavar="FRAC",
        help="per-shard failure budget: failed fraction cap",
    )
    p_sup.add_argument(
        "--breaker-shard-failures",
        type=int,
        default=2,
        metavar="S",
        help="trip the per-SKU breaker after S shards abort/fail",
    )
    p_sup.add_argument(
        "--breaker-worker-crashes",
        type=int,
        default=10,
        metavar="C",
        help="trip the per-SKU breaker after C worker crashes",
    )
    p_sup.add_argument(
        "--out",
        metavar="PATH",
        help="merge the shard stores here when the fleet completes",
    )
    p_sup.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="export supervisor counters as a Prometheus text exposition",
    )
    drills = p_sup.add_argument_group("chaos drills (deterministic fault injection)")
    drills.add_argument(
        "--drill-kill-shard",
        type=int,
        default=None,
        metavar="SHARD",
        help="SIGKILL this shard's first worker mid-write",
    )
    drills.add_argument(
        "--drill-kill-at-write",
        type=int,
        default=3,
        metavar="N",
        help="which durable write the kill drill fires at",
    )
    drills.add_argument(
        "--drill-hang-shard",
        type=int,
        default=None,
        metavar="SHARD",
        help="hang this shard's first worker (frozen heart + stalled progress)",
    )
    drills.add_argument(
        "--drill-hang-after-beats", type=int, default=1, metavar="B",
        help="beats before the hang drill freezes the heart",
    )
    drills.add_argument(
        "--drill-hang-after-writes", type=int, default=1, metavar="W",
        help="durable writes before the hang drill stalls progress",
    )
    drills.add_argument(
        "--drill-stall-shard",
        type=int,
        default=None,
        metavar="SHARD",
        help="wedge this shard's first worker (stalled progress, beating heart)",
    )
    drills.add_argument(
        "--drill-stall-after-writes", type=int, default=1, metavar="W",
        help="durable writes before the stall drill wedges the worker",
    )
    drills.add_argument(
        "--drill-poison-slot",
        type=int,
        default=None,
        metavar="SLOT",
        help="make this global slot SIGKILL every worker that starts it",
    )
    p_sup.set_defaults(func=_cmd_supervise)

    p_merge = sub.add_parser("merge", help="combine shard stores into one database")
    p_merge.add_argument("--store", required=True, metavar="DIR", help="shard store root")
    p_merge.add_argument("--out", required=True, metavar="PATH", help="merged database path")
    p_merge.add_argument(
        "--allow-gaps",
        action="store_true",
        help="exit 0 even when shards or slots are missing",
    )
    p_merge.set_defaults(func=_cmd_merge)

    p_stats = sub.add_parser("stats", help="validate and summarise exported telemetry")
    p_stats.add_argument("--trace", metavar="PATH", help="JSONL trace export to summarise")
    p_stats.add_argument("--metrics", metavar="PATH", help="Prometheus exposition to validate")
    p_stats.set_defaults(func=_cmd_stats)

    p_bench = sub.add_parser(
        "bench", help="measure the survey hot-path speedups (bit-identity asserted)"
    )
    p_bench.add_argument("--sku", default="8259CL", help="CPU model (catalogue name)")
    p_bench.add_argument("--fleet-size", type=int, default=6, help="surveyed fleet size")
    p_bench.add_argument("--root-seed", type=int, default=2022, help="fleet root seed")
    p_bench.add_argument(
        "--out",
        default="BENCH_survey.json",
        metavar="PATH",
        help="bench record file to check against and append to",
    )
    p_bench.add_argument(
        "--no-append",
        action="store_true",
        help="measure and compare only; leave the record file untouched (CI smoke)",
    )
    p_bench.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        metavar="FRAC",
        help="fail when a speedup ratio drops more than FRAC below the committed baseline",
    )
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
