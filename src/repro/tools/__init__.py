"""Command-line tools built on the library.

* ``repro-map`` (:mod:`repro.tools.map_cli`) — run the locating pipeline
  against a machine and maintain a PPIN-keyed map database; the workflow a
  real deployment of the paper's tool would use.
"""
