"""ILP model builders for the placement problems.

Each builder lowers a :class:`~repro.placement.problem.PlacementProblem`
to a :class:`repro.ilp.Model` solvable by any registered backend. The
formulations follow the NoC placement ILP of Tootaghaj & Farhat
(arXiv:1607.04298), specialised to the recovered Xeon tile grid:

Pair selection (maximize, modelled as minimize the negation)::

    max  Σ_p benefit_p · x_p
    s.t. Σ_p x_p = n_pairs                      (exactly n pairs)
         Σ_{p ∋ core c} x_p ≤ 1   ∀ cores c    (core-disjoint)
         x_p + x_q ≤ 1   ∀ route conflicts     (link-disjoint, n_pairs>1)

Job scheduling (minimize)::

    min  Lmax · (S_bound + 1) + Σ_{j,c} w_j · hop_cost_c · x_{j,c}
    s.t. Σ_c x_{j,c} = 1          ∀ jobs j     (every job placed)
         Σ_j x_{j,c} ≤ 1          ∀ cores c    (one job per core)
         Σ_{j,c} w_j · usage_{c,l} · x_{j,c} ≤ Lmax   ∀ links l

All coefficients are integers (see :mod:`repro.placement.problem`), so
optimal objectives compare exactly across backends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ilp import Model, Variable, lin_sum

from repro.placement.problem import JobSchedule, PairSelection


@dataclass(frozen=True)
class PairModel:
    """A lowered pair-selection instance: the model plus its variables."""

    model: Model
    #: ``x[i]`` selects candidate ``problem.candidates[i]``.
    x: tuple[Variable, ...]


@dataclass(frozen=True)
class ScheduleModel:
    """A lowered job-scheduling instance: the model plus its variables."""

    model: Model
    #: ``x[(j, c)]`` assigns job index ``j`` to OS core ``c``.
    x: dict[tuple[int, int], Variable]
    #: The bottleneck-link load variable.
    lmax: Variable


def build_pair_model(problem: PairSelection) -> PairModel:
    """Lower a :class:`PairSelection` to a MILP."""
    cands = problem.candidates
    model = Model("placement_pairs")
    x = tuple(
        model.add_binary(f"pair_{c.sender}_{c.receiver}") for c in cands
    )

    model.add_constraint(
        lin_sum(x).make_eq(problem.n_pairs), name="n_pairs"
    )

    by_core: dict[int, list[Variable]] = {}
    for cand, var in zip(cands, x):
        by_core.setdefault(cand.sender, []).append(var)
        by_core.setdefault(cand.receiver, []).append(var)
    for core in sorted(by_core):
        touching = by_core[core]
        if len(touching) > 1:
            model.add_constraint(
                lin_sum(touching) <= 1, name=f"core_{core}"
            )

    if problem.n_pairs > 1:
        for i, j in problem.conflicts:
            model.add_constraint(
                x[i] + x[j] <= 1, name=f"route_{i}_{j}"
            )

    # Maximize total benefit == minimize its negation.
    model.minimize(lin_sum(-cand.benefit * var for cand, var in zip(cands, x)))
    return PairModel(model=model, x=x)


def build_schedule_model(problem: JobSchedule) -> ScheduleModel:
    """Lower a :class:`JobSchedule` to a MILP."""
    cores = problem.usable_cores()
    jobs = problem.jobs
    model = Model("placement_schedule")

    x: dict[tuple[int, int], Variable] = {}
    for j, job in enumerate(jobs):
        for core in cores:
            x[(j, core)] = model.add_binary(f"job_{job.name}_core_{core}")

    lmax = model.add_integer("max_link_load", lo=0, hi=problem.load_bound())

    for j, job in enumerate(jobs):
        model.add_constraint(
            lin_sum(x[(j, core)] for core in cores).make_eq(1),
            name=f"job_{job.name}",
        )
    for core in cores:
        model.add_constraint(
            lin_sum(x[(j, core)] for j in range(len(jobs))) <= 1,
            name=f"core_{core}",
        )

    for link in problem.links:
        load = lin_sum(
            job.weight * problem.link_usage[core].get(link, 0) * x[(j, core)]
            for j, job in enumerate(jobs)
            for core in cores
            if problem.link_usage[core].get(link, 0)
        )
        model.add_constraint(
            load - lmax <= 0,
            name=f"link_{link[0].row}_{link[0].col}_{link[1].row}_{link[1].col}",
        )

    scale = problem.hops_bound() + 1
    total_hops = lin_sum(
        job.weight * problem.hop_cost(core) * x[(j, core)]
        for j, job in enumerate(jobs)
        for core in cores
    )
    model.minimize(scale * lmax + total_hops)
    return ScheduleModel(model=model, x=x, lmax=lmax)
