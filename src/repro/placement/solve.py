"""Placement entry points: solve via any backend, canonicalize, verify.

Degenerate optima are the norm on a symmetric grid (mirror-image pairs
have identical coupling), and different backends break ties differently.
To make placement *verdicts* byte-reproducible regardless of backend —
the same property PR 9 gave the reconstruction layer — every solve is
followed by a deterministic **canonicalization pass**: decision variables
are scanned in the problem's fixed preference order, each tentatively
pinned to 1; the pin is kept iff the optimal objective stays achievable.
The result is the lexicographically-first optimal solution in that order,
identical for every exact backend and provably the same solution the
brute-force reference picks (it ties-break by the same order).

The pass costs a handful of extra solves (bounded by the number of
decisions, not candidates — pinning stops once the placement is fully
determined); pass ``canonical=False`` to skip it when only the objective
value matters.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import PlacementInfeasible
from repro.ilp import Solution, SolveStatus, resolve_solver
from repro.telemetry.tracer import NULL_TRACER

from repro.placement.ilp import build_pair_model, build_schedule_model
from repro.placement.problem import (
    JobPlacement,
    JobSchedule,
    PairPlacement,
    PairSelection,
    PlacementProblem,
    PlacementResult,
)


def _solver_name(solver: Any) -> str:
    return getattr(solver, "name", type(solver).__name__)


class _CountingSolver:
    """Count backend invocations (telemetry + ``n_solves`` diagnostics)."""

    def __init__(self, inner: Any, tracer, kind: str):
        self.inner = inner
        self.tracer = tracer
        self.kind = kind
        self.n_solves = 0

    def solve(self, model) -> Solution:
        self.n_solves += 1
        self.tracer.counter("placement_solves_total", kind=self.kind).inc()
        return self.inner.solve(model)


def _initial_solve(
    counting: _CountingSolver, model, problem
) -> tuple[int, Solution]:
    """First solve: the integer optimal objective and its solution."""
    sol = counting.solve(model)
    if sol.status is SolveStatus.INFEASIBLE:
        counting.tracer.counter(
            "placement_infeasible_total", kind=problem.kind
        ).inc()
        raise PlacementInfeasible(
            f"no feasible {problem.kind} placement exists on this map "
            f"({len(model.variables)} vars, {len(model.constraints)} constraints)"
        )
    if not sol.status.ok:
        raise PlacementInfeasible(
            f"{problem.kind} placement solve failed: "
            f"{sol.status.value} {sol.message}".strip()
        )
    return int(round(sol.objective)), sol


def _pin(counting: _CountingSolver, model, var, target: int) -> Solution | None:
    """Try fixing ``var`` to 1; keep iff the optimum stays achievable."""
    model.add_constraint(var.eq(1), name=f"pin_{var.name}")
    sol = counting.solve(model)
    if sol.status.ok and int(round(sol.objective)) == target:
        return sol
    model.constraints.pop()
    return None


def place_pairs(
    core_map,
    n_pairs: int = 1,
    *,
    objective: str = "coupling",
    max_hops: int | None = None,
    allowed_cores=None,
    solver=None,
    tracer=None,
    canonical: bool = True,
) -> PlacementResult:
    """Select covert sender/receiver pair(s) on a recovered core map.

    See :class:`~repro.placement.problem.PairSelection` for the objective
    semantics. ``solver`` accepts anything
    :func:`repro.ilp.resolve_solver` does (None | name | ``BackendSpec`` |
    instance). Raises :class:`PlacementInfeasible` when no core- and
    route-disjoint selection of ``n_pairs`` exists.
    """
    problem = PairSelection(
        core_map=core_map,
        n_pairs=n_pairs,
        objective=objective,
        max_hops=max_hops,
        allowed_cores=tuple(allowed_cores) if allowed_cores is not None else None,
    )
    return solve_placement(problem, solver=solver, tracer=tracer, canonical=canonical)


def schedule_jobs(
    core_map,
    jobs,
    *,
    allowed_cores=None,
    solver=None,
    tracer=None,
    canonical: bool = True,
) -> PlacementResult:
    """Assign weighted co-tenant jobs to cores minimizing mesh contention.

    ``jobs`` is a sequence of :class:`~repro.placement.problem.JobSpec`
    (or ``(name, weight)`` tuples). See
    :class:`~repro.placement.problem.JobSchedule` for the contention
    model.
    """
    from repro.placement.problem import JobSpec

    specs = tuple(
        job if isinstance(job, JobSpec) else JobSpec(*job) for job in jobs
    )
    problem = JobSchedule(
        core_map=core_map,
        jobs=specs,
        allowed_cores=tuple(allowed_cores) if allowed_cores is not None else None,
    )
    return solve_placement(problem, solver=solver, tracer=tracer, canonical=canonical)


def solve_placement(
    problem: PlacementProblem,
    *,
    solver=None,
    tracer=None,
    canonical: bool = True,
) -> PlacementResult:
    """Solve any placement problem through the unified solver path."""
    tracer = tracer if tracer is not None else NULL_TRACER
    backend = resolve_solver(solver, tracer=tracer)
    if isinstance(problem, PairSelection):
        return _solve_pairs(problem, backend, tracer, canonical)
    if isinstance(problem, JobSchedule):
        return _solve_schedule(problem, backend, tracer, canonical)
    raise TypeError(f"unknown placement problem {type(problem).__name__}")


def _solve_pairs(
    problem: PairSelection, backend, tracer, canonical: bool
) -> PlacementResult:
    cands = problem.candidates
    if len(cands) < problem.n_pairs:
        tracer.counter("placement_infeasible_total", kind=problem.kind).inc()
        raise PlacementInfeasible(
            f"{problem.n_pairs} pairs requested but only "
            f"{len(cands)} candidates exist"
        )
    with tracer.span(
        "placement_solve",
        kind=problem.kind,
        solver=_solver_name(backend),
        candidates=len(cands),
        n_pairs=problem.n_pairs,
    ):
        built = build_pair_model(problem)
        counting = _CountingSolver(backend, tracer, problem.kind)
        target, sol = _initial_solve(counting, built.model, problem)

        if canonical:
            pinned = 0
            for idx in problem.preference_order():
                if pinned == problem.n_pairs:
                    break
                accepted = _pin(counting, built.model, built.x[idx], target)
                if accepted is not None:
                    sol = accepted
                    pinned += 1

        chosen = [
            cand
            for cand, var in zip(cands, built.x)
            if sol.int_value_of(var) == 1
        ]
        # The negated-minimization objective equals -target.
        return PlacementResult(
            kind=problem.kind,
            objective_value=-target,
            pairs=tuple(
                PairPlacement(
                    sender=c.sender,
                    receiver=c.receiver,
                    hops=c.hops,
                    orientation=c.orientation,
                    benefit=c.benefit,
                )
                for c in chosen
            ),
            solver_name=_solver_name(backend),
            canonical=canonical,
            n_solves=counting.n_solves,
        )


def _solve_schedule(
    problem: JobSchedule, backend, tracer, canonical: bool
) -> PlacementResult:
    cores = problem.usable_cores()
    if len(problem.jobs) > len(cores):
        tracer.counter("placement_infeasible_total", kind=problem.kind).inc()
        raise PlacementInfeasible(
            f"{len(problem.jobs)} jobs but only {len(cores)} usable cores"
        )
    with tracer.span(
        "placement_solve",
        kind=problem.kind,
        solver=_solver_name(backend),
        jobs=len(problem.jobs),
        cores=len(cores),
    ):
        built = build_schedule_model(problem)
        counting = _CountingSolver(backend, tracer, problem.kind)
        target, sol = _initial_solve(counting, built.model, problem)

        if canonical:
            for j in range(len(problem.jobs)):
                for core in cores:
                    accepted = _pin(
                        counting, built.model, built.x[(j, core)], target
                    )
                    if accepted is not None:
                        sol = accepted
                        break

        assignment = {}
        for j, job in enumerate(problem.jobs):
            for core in cores:
                if sol.int_value_of(built.x[(j, core)]) == 1:
                    assignment[job.name] = core
                    break
        combined, max_load, total_hops = problem.evaluate(assignment)
        hm = problem.hop_matrix
        return PlacementResult(
            kind=problem.kind,
            objective_value=combined,
            assignment=tuple(
                JobPlacement(
                    job=job.name,
                    os_core=assignment[job.name],
                    row=hm.coord_of(assignment[job.name]).row,
                    col=hm.coord_of(assignment[job.name]).col,
                )
                for job in problem.jobs
            ),
            max_link_load=max_load,
            total_weighted_hops=total_hops,
            solver_name=_solver_name(backend),
            canonical=canonical,
            n_solves=counting.n_solves,
        )
