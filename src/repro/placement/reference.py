"""Brute-force reference optimizers for small grids.

Exhaustive enumeration over the same analytics the ILP builders consume
(:mod:`repro.placement.problem`), with the same canonical tie-break: among
all optimal solutions, the one that is lexicographically first in the
problem's deterministic preference order. The differential tests assert
byte-identical verdicts between these and every ILP backend — the ILP's
correctness proof on every instance small enough to enumerate.

Complexity is combinatorial (``C(P, k)`` selections, ``P(C, J)``
assignments); intended for differential testing and tiny grids only.
"""

from __future__ import annotations

from itertools import combinations, permutations

from repro.core.errors import PlacementInfeasible

from repro.placement.problem import (
    JobPlacement,
    JobSchedule,
    PairPlacement,
    PairSelection,
    PlacementResult,
)

REFERENCE_SOLVER = "brute-force"


def brute_force_pairs(problem: PairSelection) -> PlacementResult:
    """Exhaustively optimal (and canonical) covert-pair selection."""
    cands = problem.candidates
    if len(cands) < problem.n_pairs:
        raise PlacementInfeasible(
            f"{problem.n_pairs} pairs requested but only "
            f"{len(cands)} candidates exist"
        )
    conflict = set(problem.conflicts) if problem.n_pairs > 1 else set()
    pref = problem.preference_order()
    rank = {idx: pos for pos, idx in enumerate(pref)}

    best_score: int | None = None
    best_ranks: tuple[int, ...] | None = None
    best_sel: tuple[int, ...] | None = None
    for sel in combinations(range(len(cands)), problem.n_pairs):
        cores: set[int] = set()
        ok = True
        for i in sel:
            c = cands[i]
            if c.sender in cores or c.receiver in cores:
                ok = False
                break
            cores.add(c.sender)
            cores.add(c.receiver)
        if not ok:
            continue
        if conflict and any(
            (i, j) in conflict for i, j in combinations(sel, 2)
        ):
            continue
        score = sum(cands[i].benefit for i in sel)
        ranks = tuple(sorted(rank[i] for i in sel))
        if (
            best_score is None
            or score > best_score
            or (score == best_score and ranks < best_ranks)
        ):
            best_score, best_ranks, best_sel = score, ranks, sel

    if best_sel is None:
        raise PlacementInfeasible(
            f"no core- and route-disjoint selection of {problem.n_pairs} "
            "pairs exists on this map"
        )
    chosen = [cands[i] for i in sorted(best_sel)]
    return PlacementResult(
        kind=problem.kind,
        objective_value=best_score,
        pairs=tuple(
            PairPlacement(
                sender=c.sender,
                receiver=c.receiver,
                hops=c.hops,
                orientation=c.orientation,
                benefit=c.benefit,
            )
            for c in chosen
        ),
        solver_name=REFERENCE_SOLVER,
        canonical=True,
        n_solves=1,
    )


def brute_force_schedule(problem: JobSchedule) -> PlacementResult:
    """Exhaustively optimal (and canonical) co-tenant job schedule.

    Enumerates job→core assignments in lexicographic core order (jobs in
    declaration order), keeping the strictly best — so ties resolve to
    the lexicographically-first optimal assignment, matching the ILP
    canonicalization pass.
    """
    cores = problem.usable_cores()
    jobs = problem.jobs
    if len(jobs) > len(cores):
        raise PlacementInfeasible(
            f"{len(jobs)} jobs but only {len(cores)} usable cores"
        )

    best: tuple[int, int, int] | None = None
    best_assign: tuple[int, ...] | None = None
    for assign in permutations(cores, len(jobs)):
        combined, max_load, total_hops = problem.evaluate(
            {job.name: core for job, core in zip(jobs, assign)}
        )
        if best is None or combined < best[0]:
            best = (combined, max_load, total_hops)
            best_assign = assign

    assert best is not None and best_assign is not None
    hm = problem.hop_matrix
    return PlacementResult(
        kind=problem.kind,
        objective_value=best[0],
        assignment=tuple(
            JobPlacement(
                job=job.name,
                os_core=core,
                row=hm.coord_of(core).row,
                col=hm.coord_of(core).col,
            )
            for job, core in zip(jobs, best_assign)
        ),
        max_link_load=best[1],
        total_weighted_hops=best[2],
        solver_name=REFERENCE_SOLVER,
        canonical=True,
        n_solves=1,
    )
