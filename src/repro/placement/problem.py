"""Placement problem and result types.

Both problems consume a recovered :class:`~repro.core.coremap.CoreMap`
and precompute *analytics* — candidate pairs with integer benefits, mesh
link usage per core — that the ILP builders (:mod:`repro.placement.ilp`)
and the brute-force reference (:mod:`repro.placement.reference`) share.
One definition of the objective, two independent optimizers: any drift
between them is a bug the differential tests catch.

All objective coefficients are **integers**. The thermal coupling is
quantised to µK/W and the hops score is a small integer by construction,
so "equal objective" is exact across solver backends and the canonical
verdict (see :mod:`repro.placement.solve`) is byte-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property

from repro.core.coremap import CoreMap
from repro.core.errors import PlacementInfeasible
from repro.mesh.geometry import TileCoord
from repro.mesh.hops import HopMatrix, Link, route_links
from repro.thermal.rc_model import ThermalParams, steady_state_coupling

#: Hops-mode orientation bonus: the figure-7 BER sweep shows vertical
#: channels beat horizontal ones at equal hop count, and mixed routes are
#: worst (§V-A: g_vertical > g_horizontal). The bonus spread (2) is
#: strictly below the per-hop step (4), so fewer hops always dominates.
_ORIENT_BONUS = {"vertical": 3, "horizontal": 2, "mixed": 1, "same": 0}
_HOP_STEP = 4

#: Quantisation of the steady-state thermal coupling (K/W → µK/W).
_COUPLING_SCALE = 1_000_000


@dataclass(frozen=True)
class PairCandidate:
    """One feasible (sender, receiver) covert pair with its analytics."""

    index: int
    sender: int
    receiver: int
    hops: int
    orientation: str
    #: Integer objective contribution (µK/W coupling, or the hops score).
    benefit: int
    #: Directed mesh links of the round-trip route (both directions); two
    #: candidates *interfere* when these sets intersect.
    links: frozenset[Link] = field(repr=False)


@dataclass(frozen=True)
class JobSpec:
    """One co-tenant job: a name and a relative mesh-traffic weight."""

    name: str
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if not isinstance(self.weight, int) or self.weight < 1:
            raise ValueError(f"job {self.name!r}: weight must be a positive int")


class PlacementProblem:
    """Base of the placement problem family.

    Subclasses hold a :class:`CoreMap` plus problem parameters and expose
    deterministic analytics; they are consumed by
    :func:`repro.placement.solve.solve_placement` and by the brute-force
    reference. ``kind`` labels telemetry and result records.
    """

    kind: str = "placement"
    core_map: CoreMap

    @cached_property
    def hop_matrix(self) -> HopMatrix:
        return HopMatrix.from_core_map(self.core_map)

    def usable_cores(self) -> tuple[int, ...]:
        """OS cores placements may use, ascending (allow-list applied)."""
        cores = self.hop_matrix.cores
        allowed = getattr(self, "allowed_cores", None)
        if allowed is None:
            return cores
        allowed_set = set(allowed)
        unknown = allowed_set - set(cores)
        if unknown:
            raise ValueError(
                f"allowed_cores {sorted(unknown)} are not mapped OS cores"
            )
        return tuple(c for c in cores if c in allowed_set)


@dataclass(frozen=True)
class PairSelection(PlacementProblem):
    """Select ``n_pairs`` covert sender/receiver pairs on one core map.

    ``objective="coupling"`` maximizes the summed steady-state thermal
    coupling between each pair's tiles (µK per watt of sender power, from
    the same conduction Laplacian the §IV simulator integrates).
    ``objective="hops"`` maximizes a mesh-proximity score: fewer hops
    first, then vertical > horizontal > mixed orientation — the figure-7
    BER ordering. Selected pairs must be core-disjoint and, for
    ``n_pairs > 1``, route-disjoint (no shared directed mesh link), so the
    aggregate channel's pairs do not steal each other's bandwidth.
    """

    core_map: CoreMap
    n_pairs: int = 1
    objective: str = "coupling"
    #: Candidate pairs farther apart than this are excluded (None = no cap).
    max_hops: int | None = None
    allowed_cores: tuple[int, ...] | None = None
    thermal: ThermalParams | None = None

    kind = "pairs"

    def __post_init__(self) -> None:
        if self.n_pairs < 1:
            raise ValueError("n_pairs must be >= 1")
        if self.objective not in ("coupling", "hops"):
            raise ValueError(
                f"unknown pair objective {self.objective!r}; "
                "choose 'coupling' or 'hops'"
            )
        if self.max_hops is not None and self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")

    @cached_property
    def candidates(self) -> tuple[PairCandidate, ...]:
        """All feasible ordered pairs with integer benefits, index order.

        Ordered pairs, not unordered: the thermal coupling is symmetric
        but the covert channel is not (the sender needs a stressable
        core, the receiver a sensor), so both orientations are offered
        and the canonical pass breaks the tie deterministically.
        """
        hm = self.hop_matrix
        cores = self.usable_cores()
        coupling = None
        if self.objective == "coupling":
            coupling = steady_state_coupling(
                self.core_map.grid, self.thermal or ThermalParams()
            )
            tile_index = {
                coord: i for i, coord in enumerate(self.core_map.grid.coords())
            }
        grid_span = (
            self.core_map.grid.n_rows - 1 + self.core_map.grid.n_cols - 1
        )
        out: list[PairCandidate] = []
        for sender in cores:
            for receiver in cores:
                if sender == receiver:
                    continue
                hops = hm.hops(sender, receiver)
                if self.max_hops is not None and hops > self.max_hops:
                    continue
                orientation = hm.orientation(sender, receiver)
                if coupling is not None:
                    s = tile_index[hm.coord_of(sender)]
                    r = tile_index[hm.coord_of(receiver)]
                    benefit = int(round(coupling[r, s] * _COUPLING_SCALE))
                else:
                    benefit = (
                        _HOP_STEP * (grid_span - hops)
                        + _ORIENT_BONUS[orientation]
                    )
                out.append(
                    PairCandidate(
                        index=len(out),
                        sender=sender,
                        receiver=receiver,
                        hops=hops,
                        orientation=orientation,
                        benefit=benefit,
                        links=hm.links(sender, receiver)
                        | hm.links(receiver, sender),
                    )
                )
        return tuple(out)

    @cached_property
    def conflicts(self) -> tuple[tuple[int, int], ...]:
        """Candidate index pairs (i < j) whose routes interfere.

        Only *core-disjoint* candidates appear here — candidates sharing
        an endpoint core are already mutually excluded by the per-core
        capacity constraints, so listing them again would only bloat the
        model. A conflict means the round-trip routes share a directed
        mesh link and the pairs would steal each other's ring bandwidth.
        """
        cands = self.candidates
        out: list[tuple[int, int]] = []
        for i, a in enumerate(cands):
            cores_a = {a.sender, a.receiver}
            for j in range(i + 1, len(cands)):
                b = cands[j]
                if cores_a & {b.sender, b.receiver}:
                    continue
                if a.links & b.links:
                    out.append((i, j))
        return tuple(out)

    def preference_order(self) -> tuple[int, ...]:
        """Candidate indices, best benefit first (ties: lowest index).

        This single ordering defines the *canonical* optimum: among all
        benefit-optimal selections, the one whose indicator vector is
        lexicographically greatest in this order. Both the ILP pinning
        pass and the brute-force reference use it.
        """
        cands = self.candidates
        return tuple(
            sorted(range(len(cands)), key=lambda i: (-cands[i].benefit, i))
        )


@dataclass(frozen=True)
class JobSchedule(PlacementProblem):
    """Assign weighted co-tenant jobs to cores minimizing mesh contention.

    Every job's LLC traffic is modelled as a round trip from its core
    tile to **every located CHA slice** (physical addresses interleave
    across slices, §II-A), weighted by the job's traffic weight. The
    objective minimizes the worst per-link load first and the total
    traffic-weighted hop count as a strict tie-break — one integer via a
    big-M lexicographic combination, see :func:`combined_objective`.
    """

    core_map: CoreMap
    jobs: tuple[JobSpec, ...]
    allowed_cores: tuple[int, ...] | None = None

    kind = "schedule"

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if not self.jobs:
            raise ValueError("at least one job is required")
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")

    @cached_property
    def cha_tiles(self) -> tuple[TileCoord, ...]:
        """Tiles of all located CHA slices, deterministic (CHA-ID) order."""
        return tuple(
            self.core_map.cha_positions[cha]
            for cha in sorted(self.core_map.cha_positions)
        )

    @cached_property
    def link_usage(self) -> dict[int, dict[Link, int]]:
        """Per usable core: directed-link traversal counts of its traffic.

        Counts the request route (core → slice) and the response route
        (slice → core) once per located CHA slice. Multiplied by the job
        weight, this is the load a job at that core puts on each link.
        """
        usage: dict[int, dict[Link, int]] = {}
        hm = self.hop_matrix
        for core in self.usable_cores():
            counts: dict[Link, int] = {}
            tile = hm.coord_of(core)
            for cha_tile in self.cha_tiles:
                for link in route_links(tile, cha_tile):
                    counts[link] = counts.get(link, 0) + 1
                for link in route_links(cha_tile, tile):
                    counts[link] = counts.get(link, 0) + 1
            usage[core] = counts
        return usage

    def hop_cost(self, core: int) -> int:
        """Total link traversals of one unit of traffic from ``core``."""
        return sum(self.link_usage[core].values())

    @cached_property
    def links(self) -> tuple[Link, ...]:
        """All directed links any usable core's traffic touches, sorted."""
        seen: set[Link] = set()
        for counts in self.link_usage.values():
            seen.update(counts)
        return tuple(sorted(seen))

    def total_weight(self) -> int:
        return sum(j.weight for j in self.jobs)

    def hops_bound(self) -> int:
        """Upper bound on the total traffic-weighted hop term ``S``."""
        worst = max((self.hop_cost(c) for c in self.usable_cores()), default=0)
        return self.total_weight() * worst

    def load_bound(self) -> int:
        """Upper bound on any single link's load ``Lmax``."""
        worst = max(
            (
                max(counts.values(), default=0)
                for counts in self.link_usage.values()
            ),
            default=0,
        )
        return self.total_weight() * worst

    def combined_objective(self, max_load: int, total_hops: int) -> int:
        """Lexicographic (max link load, total weighted hops) as one int.

        ``Lmax`` is scaled past the largest possible hops term so the
        solver minimizes the bottleneck link first and the total only
        breaks ties: ``Lmax * (S_bound + 1) + S``.
        """
        return max_load * (self.hops_bound() + 1) + total_hops

    def evaluate(self, assignment: dict[str, int]) -> tuple[int, int, int]:
        """``(combined, max_load, total_hops)`` of a job→core assignment."""
        loads: dict[Link, int] = {}
        total_hops = 0
        for job in self.jobs:
            core = assignment[job.name]
            total_hops += job.weight * self.hop_cost(core)
            for link, count in self.link_usage[core].items():
                loads[link] = loads.get(link, 0) + job.weight * count
        max_load = max(loads.values(), default=0)
        return self.combined_objective(max_load, total_hops), max_load, total_hops


# -- results --------------------------------------------------------------------------
@dataclass(frozen=True)
class PairPlacement:
    """One selected covert pair in a :class:`PlacementResult`."""

    sender: int
    receiver: int
    hops: int
    orientation: str
    benefit: int


@dataclass(frozen=True)
class JobPlacement:
    """One job→core assignment in a :class:`PlacementResult`."""

    job: str
    os_core: int
    row: int
    col: int


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a placement solve.

    :meth:`verdict` is the canonical byte encoding — only the decision
    and its objective, none of the solver diagnostics — so two backends
    that agree on the placement produce identical bytes.
    """

    kind: str
    #: Integer objective: summed benefit (pairs, maximized) or combined
    #: contention score (schedule, minimized).
    objective_value: int
    pairs: tuple[PairPlacement, ...] = ()
    assignment: tuple[JobPlacement, ...] = ()
    #: Schedule diagnostics (None for pair selection).
    max_link_load: int | None = None
    total_weighted_hops: int | None = None
    #: Solver diagnostics — excluded from :meth:`verdict`.
    solver_name: str = ""
    canonical: bool = True
    n_solves: int = 1

    def verdict(self) -> bytes:
        payload = {
            "kind": self.kind,
            "objective": self.objective_value,
            "pairs": [[p.sender, p.receiver] for p in self.pairs],
            "assignment": [[a.job, a.os_core] for a in self.assignment],
        }
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def best_pair(self) -> PairPlacement:
        """The highest-benefit selected pair (pairs results only)."""
        if not self.pairs:
            raise PlacementInfeasible("result contains no selected pairs")
        return max(self.pairs, key=lambda p: (p.benefit, -p.sender))
