"""Placement over a surveyed fleet: pick the best instance for the job.

The paper's deployment story (§VI): a privileged phase surveys the fleet
once (PPIN-keyed records), and a later unprivileged phase reads the PPIN
of whatever instance it landed on and places its threads. This module
closes the loop in the other direction — given the *whole* fleet's
records, solve the placement on every instance and rank them, so an
attacker renting N instances (or a scheduler owning them) knows which
machine offers the strongest covert pair or the least-contended schedule.

Sources accepted everywhere: a live
:class:`~repro.store.database.MapDatabase`, a path to its JSON file, a
sharded :class:`~repro.store.segments.SegmentStore` root (the survey
service's ``--store`` layout), or a single shard directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.coremap import CoreMap
from repro.core.errors import PlacementInfeasible
from repro.store.database import MapDatabase
from repro.store.serialization import record_core_map
from repro.telemetry.tracer import NULL_TRACER

from repro.placement.problem import PlacementResult
from repro.placement.solve import place_pairs, schedule_jobs


def load_fleet_maps(source) -> dict[int, CoreMap]:
    """Load every recovered core map of a fleet, keyed by PPIN.

    ``source``: a :class:`MapDatabase`, a path to a map-database JSON
    file, a segment-store root (directory containing ``shard-*-of-*``
    subdirectories), one shard directory itself, or an already-loaded
    ``{ppin: CoreMap}`` dict (returned copied).
    """
    if isinstance(source, dict):
        return dict(source)
    if isinstance(source, MapDatabase):
        return {ppin: source.lookup(ppin) for ppin in source.ppins()}

    path = Path(source)
    if path.is_dir():
        from repro.store.segments import MANIFEST_NAME, SegmentStore

        shard_dirs = sorted(
            child
            for child in path.glob("shard-*-of-*")
            if (child / MANIFEST_NAME).exists()
        )
        if not shard_dirs:
            if (path / MANIFEST_NAME).exists():
                shard_dirs = [path]
            else:
                raise FileNotFoundError(
                    f"{path} contains no shard stores and no manifest"
                )
        maps: dict[int, CoreMap] = {}
        for shard_dir in shard_dirs:
            with SegmentStore(shard_dir, mode="read") as store:
                for key, record in store.records().items():
                    maps[int(key, 16)] = record_core_map(record)
        return maps

    return load_fleet_maps(MapDatabase(path))


@dataclass(frozen=True)
class FleetPlacement:
    """Ranked placement results across a fleet."""

    kind: str
    #: ``(ppin, result)`` per instance, ascending PPIN.
    results: tuple[tuple[int, PlacementResult], ...]
    #: Instances where the placement was infeasible, ascending PPIN.
    infeasible: tuple[int, ...] = ()

    @property
    def n_instances(self) -> int:
        return len(self.results) + len(self.infeasible)

    @property
    def best(self) -> tuple[int, PlacementResult]:
        """The winning ``(ppin, result)``.

        Pairs maximize benefit. Schedules compare ``(max_link_load,
        total_weighted_hops)`` lexicographically — NOT the combined
        objective, whose big-M scale depends on each instance's own hops
        bound and is meaningless across maps. Ties go to the lowest PPIN
        (the results are PPIN-ascending, and ``max``/``min`` keep the
        first of equals).
        """
        if not self.results:
            raise PlacementInfeasible(
                "placement was infeasible on every fleet instance"
            )
        if self.kind == "pairs":
            return max(self.results, key=lambda item: item[1].objective_value)
        return min(
            self.results,
            key=lambda item: (
                item[1].max_link_load,
                item[1].total_weighted_hops,
            ),
        )


def place_over_fleet(
    source,
    *,
    jobs=None,
    n_pairs: int = 1,
    objective: str = "coupling",
    max_hops: int | None = None,
    allowed_cores=None,
    solver=None,
    tracer=None,
    canonical: bool = True,
) -> FleetPlacement:
    """Solve one placement problem on every instance of a surveyed fleet.

    With ``jobs`` (a sequence of :class:`JobSpec` / ``(name, weight)``
    tuples) the schedule problem is solved per instance; otherwise the
    covert-pair selection with ``n_pairs``/``objective``/``max_hops``.
    Instances where the problem is infeasible are recorded, not fatal —
    the fleet report says which machines cannot host the placement.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    maps = load_fleet_maps(source)
    results: list[tuple[int, PlacementResult]] = []
    infeasible: list[int] = []
    kind = "schedule" if jobs is not None else "pairs"
    with tracer.span("placement_fleet", kind=kind, instances=len(maps)):
        for ppin in sorted(maps):
            core_map = maps[ppin]
            try:
                if jobs is not None:
                    result = schedule_jobs(
                        core_map,
                        jobs,
                        allowed_cores=allowed_cores,
                        solver=solver,
                        tracer=tracer,
                        canonical=canonical,
                    )
                else:
                    result = place_pairs(
                        core_map,
                        n_pairs,
                        objective=objective,
                        max_hops=max_hops,
                        allowed_cores=allowed_cores,
                        solver=solver,
                        tracer=tracer,
                        canonical=canonical,
                    )
            except PlacementInfeasible:
                infeasible.append(ppin)
                continue
            results.append((ppin, result))
        tracer.counter("placement_fleet_instances_total", kind=kind).add(
            len(maps)
        )
    return FleetPlacement(
        kind=kind, results=tuple(results), infeasible=tuple(infeasible)
    )
