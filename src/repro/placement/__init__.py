"""Neighbor-aware placement over recovered core maps (ROADMAP item 5).

The paper's payoff (§IV/§V): once the physical core map of a machine is
known, an attacker — or a defender — can *place* threads with knowledge of
the tile grid. This package turns a recovered
:class:`~repro.core.coremap.CoreMap` into optimal placements by solving
small ILPs over the physical grid through the pluggable solver registry
(:func:`repro.ilp.resolve_solver`):

* :func:`place_pairs` — covert sender/receiver pair selection, maximizing
  steady-state thermal coupling (the §IV channel) or a hops/orientation
  score (the §V mesh view), with non-interference constraints when
  several pairs form an aggregate-throughput channel;
* :func:`schedule_jobs` — the defensive dual: assign weighted co-tenant
  jobs to cores minimizing mesh contention (max per-link load first,
  total traffic-weighted hops as tie-break);
* :mod:`repro.placement.reference` — brute-force reference optimizers for
  small grids, against which every ILP answer is differentially tested;
* :func:`place_over_fleet` — run a placement over every record of a
  surveyed fleet (:class:`~repro.store.database.MapDatabase` or a sharded
  :class:`~repro.store.segments.SegmentStore` root) and pick the best
  instance.

All verdicts are deterministic down to the byte across solver backends:
objectives use integer coefficients and results are canonicalized to the
lexicographically-first optimum (see :mod:`repro.placement.solve`).
"""

from repro.placement.problem import (
    JobPlacement,
    JobSchedule,
    JobSpec,
    PairCandidate,
    PairPlacement,
    PairSelection,
    PlacementProblem,
    PlacementResult,
)
from repro.placement.solve import place_pairs, schedule_jobs, solve_placement
from repro.placement.reference import brute_force_pairs, brute_force_schedule
from repro.placement.fleet import (
    FleetPlacement,
    load_fleet_maps,
    place_over_fleet,
)

__all__ = [
    "JobPlacement",
    "JobSchedule",
    "JobSpec",
    "PairCandidate",
    "PairPlacement",
    "PairSelection",
    "PlacementProblem",
    "PlacementResult",
    "place_pairs",
    "schedule_jobs",
    "solve_placement",
    "brute_force_pairs",
    "brute_force_schedule",
    "FleetPlacement",
    "load_fleet_maps",
    "place_over_fleet",
]
