"""Fault specifications and deterministic fleet chaos plans."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class FaultSpec:
    """Which faults to inject and how hard, as plain picklable data.

    Rates are per fault opportunity (one MSR read, one readback batch, one
    workload execution). Two knobs make faults *transient*:

    * ``max_faults`` — a total budget; once spent, the injector goes quiet
      and the run behaves like a healthy machine (recovery happens inside
      one pipeline run, via :class:`~repro.core.pipeline.RetryPolicy`);
    * ``only_attempts`` — faults fire only on the first ``k`` slot-level
      dispatch attempts (recovery happens across survey retries).
    """

    #: Seed of the injector's own RNG stream (independent of the machine's).
    seed: int = 0
    #: Probability an MSR read / readback batch raises a transient error.
    msr_read_error_rate: float = 0.0
    #: Probability a counter readback comes back zeroed (dropped).
    msr_zero_read_rate: float = 0.0
    #: Wrap counter reads modulo ``2**bits`` (models narrow/saturating
    #: counters; surfaces as negative deltas → ``CounterOverflow``).
    counter_wrap_bits: int | None = None
    #: Probability a pinned workload is preempted mid-probe.
    preempt_rate: float = 0.0
    #: Fraction of the workload's rounds lost when preempted.
    preempt_fraction: float = 0.5
    #: Probability a co-tenant noise burst lands around a workload.
    noise_burst_rate: float = 0.0
    #: Burst intensity (mesh flows / lines per flow, a NoiseConfig spike).
    noise_burst_flows: int = 64
    noise_burst_lines: int = 8
    #: Stall the first workload of affected attempts (per-slot timeouts).
    stall_seconds: float = 0.0
    stall_attempts: int = 0
    #: Kill the mapping worker outright on attempts 1..k.
    worker_crash_attempts: int = 0
    #: Total injection budget (None = unlimited).
    max_faults: int | None = None
    #: Faults fire only on slot attempts 1..k (0 = every attempt).
    only_attempts: int = 0

    def __post_init__(self) -> None:
        for name in ("msr_read_error_rate", "msr_zero_read_rate", "preempt_rate", "noise_burst_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0.0 <= self.preempt_fraction < 1.0:
            raise ValueError("preempt_fraction must be in [0, 1)")
        if self.counter_wrap_bits is not None and not 1 <= self.counter_wrap_bits < 64:
            raise ValueError("counter_wrap_bits must be in [1, 64)")
        if self.noise_burst_flows < 0 or self.noise_burst_lines < 0:
            raise ValueError("noise burst intensity must be non-negative")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")
        if min(self.stall_attempts, self.worker_crash_attempts, self.only_attempts) < 0:
            raise ValueError("attempt gates must be non-negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")

    def active_on(self, attempt: int) -> bool:
        """Whether any fault may fire on slot-dispatch ``attempt`` (1-based)."""
        return self.only_attempts == 0 or attempt <= self.only_attempts

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**data)

    # -- presets used by chaos plans and the CLI drill ---------------------------
    @classmethod
    def hard_msr(cls, seed: int) -> "FaultSpec":
        """Every MSR access fails — the slot can never map."""
        return cls(seed=seed, msr_read_error_rate=1.0)

    @classmethod
    def flaky_first_attempt(cls, seed: int) -> "FaultSpec":
        """Heavy corruption on the first dispatch only — recoverable."""
        return cls(
            seed=seed,
            msr_zero_read_rate=0.3,
            preempt_rate=0.3,
            noise_burst_rate=0.2,
            only_attempts=1,
        )

    @classmethod
    def crash_once(cls, seed: int) -> "FaultSpec":
        """The first mapping worker dies — recoverable via re-dispatch."""
        return cls(seed=seed, worker_crash_attempts=1)


class FaultBudget:
    """Mutable spend-tracker shared by all injectors of one machine."""

    def __init__(self, limit: int | None):
        self.limit = limit
        self.fired = 0

    def spend(self) -> bool:
        """Consume one fault if the budget allows; True when it fired."""
        if self.limit is not None and self.fired >= self.limit:
            return False
        self.fired += 1
        return True


#: Preset rotation used by :func:`chaos_plan` — one permanent failure mode
#: followed by two distinct recoverable ones.
_CHAOS_PRESETS = (
    FaultSpec.hard_msr,
    FaultSpec.crash_once,
    FaultSpec.flaky_first_attempt,
)


def chaos_plan(
    n_slots: int, n_faulty: int, seed: int = 0
) -> dict[int, FaultSpec]:
    """Deterministically assign fault specs to ``n_faulty`` fleet slots.

    The same ``(n_slots, n_faulty, seed)`` always yields the same plan, so
    chaos drills are reproducible in CI. Specs rotate through the preset
    failure modes (permanent MSR failure, worker crash, first-attempt
    corruption).
    """
    if not 0 <= n_faulty <= n_slots:
        raise ValueError("need 0 <= n_faulty <= n_slots")
    rng = derive_rng(seed, "chaos-plan", n_slots, n_faulty)
    slots = sorted(rng.choice(n_slots, size=n_faulty, replace=False).tolist())
    return {
        int(slot): _CHAOS_PRESETS[i % len(_CHAOS_PRESETS)](seed=seed + i)
        for i, slot in enumerate(slots)
    }
