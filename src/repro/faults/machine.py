"""Machine-level fault injection: preemption, noise bursts, stalls, crashes."""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time

import numpy as np

from repro.core.errors import WorkerCrashError
from repro.faults.msr import FaultyMsrDevice
from repro.faults.plan import FaultBudget, FaultSpec
from repro.sim.machine import SimulatedMachine
from repro.sim.threads import ContendedWrite, EvictionSweep, ProducerConsumer, Workload
from repro.telemetry.tracer import NULL_TRACER
from repro.util.rng import derive_rng


def _truncated(workload: Workload, fraction: float) -> Workload:
    """The workload after losing ``fraction`` of its rounds to preemption."""
    if isinstance(workload, EvictionSweep):
        return dataclasses.replace(
            workload, sweeps=max(1, int(workload.sweeps * (1.0 - fraction)))
        )
    if isinstance(workload, (ContendedWrite, ProducerConsumer)):
        return dataclasses.replace(
            workload, rounds=max(1, int(workload.rounds * (1.0 - fraction)))
        )
    return workload


class FaultyMachine:
    """A :class:`~repro.sim.machine.SimulatedMachine` under injected faults.

    Delegates everything to the wrapped machine; only the MSR device and
    workload execution are perturbed. The injector draws from its own
    seeded stream, so the machine's noise/sampling RNG advances exactly as
    it would on a healthy run.
    """

    def __init__(
        self,
        inner: SimulatedMachine,
        spec: FaultSpec,
        attempt: int = 1,
        tracer=None,
    ):
        self._inner = inner
        self._spec = spec
        self._attempt = attempt
        self._active = spec.active_on(attempt)
        self._budget = FaultBudget(spec.max_faults)
        self._exec_rng: np.random.Generator = derive_rng(spec.seed, "faults-exec", attempt)
        self._stalled = False
        tracer = tracer if tracer is not None else NULL_TRACER
        self._c_fault = lambda kind: tracer.counter("faults_injected_total", kind=kind)
        if self._active and (
            spec.msr_read_error_rate > 0
            or spec.msr_zero_read_rate > 0
            or spec.counter_wrap_bits is not None
        ):
            self._msr = FaultyMsrDevice(
                inner.msr,
                spec,
                derive_rng(spec.seed, "faults-msr", attempt),
                self._budget,
                tracer=tracer,
            )
        else:
            self._msr = inner.msr

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def msr(self):
        return self._msr

    @property
    def cacheable_measurements(self) -> bool:
        # Never serve or record measurement-cache entries under injection:
        # a replayed phase would skip the probes the faults target.
        return False

    @property
    def faults_fired(self) -> int:
        return self._budget.fired

    def _fire(self, rate: float) -> bool:
        return (
            self._active
            and rate > 0.0
            and self._exec_rng.random() < rate
            and self._budget.spend()
        )

    def maybe_crash(self) -> None:
        """Kill the mapping worker if this attempt is marked to crash.

        Inside a pool worker the process genuinely dies (the parent sees a
        ``BrokenProcessPool``); in the main process the crash surfaces as a
        :class:`~repro.core.errors.WorkerCrashError` instead.
        """
        if self._attempt <= self._spec.worker_crash_attempts:
            self._c_fault("worker_crash").inc()
            if multiprocessing.parent_process() is not None:
                os._exit(3)  # noqa: SLF001 - simulating an abrupt worker death
            raise WorkerCrashError(
                f"injected worker crash on attempt {self._attempt}"
            )

    def execute(self, workload: Workload) -> None:
        if self._active and not self._stalled and self._attempt <= self._spec.stall_attempts:
            self._stalled = True
            self._c_fault("stall").inc()
            time.sleep(self._spec.stall_seconds)
        if self._fire(self._spec.noise_burst_rate):
            # A co-tenant burst: a transient NoiseConfig spike realised as
            # extra background flows around this one probe.
            self._c_fault("noise_burst").inc()
            self._inner.instance.mesh.inject_background(
                self._exec_rng, self._spec.noise_burst_flows, self._spec.noise_burst_lines
            )
        if self._fire(self._spec.preempt_rate):
            self._c_fault("preempt").inc()
            workload = _truncated(workload, self._spec.preempt_fraction)
        self._inner.execute(workload)


def inject_faults(
    machine: SimulatedMachine,
    spec: FaultSpec | None,
    attempt: int = 1,
    tracer=None,
) -> SimulatedMachine:
    """Arm ``machine`` with ``spec``; pass-through when nothing can fire."""
    if spec is None:
        return machine
    return FaultyMachine(machine, spec, attempt=attempt, tracer=tracer)
