"""Seeded fault injection for the mapping pipeline and survey engine.

Real uncore measurement is messy: MSR reads fail sporadically, PMON
readbacks get dropped or wrap, pinned probe threads are preempted, and
co-tenant traffic arrives in bursts. This package injects exactly those
failures — deterministically, from a seed — so the retry/degradation
machinery in :mod:`repro.core.pipeline` and the failure isolation in
:mod:`repro.survey.runner` can be exercised and regression-tested.

* :class:`FaultSpec` — a picklable description of which faults fire and
  how often (plus an optional total budget, for transient-only faults);
* :class:`FaultyMsrDevice` — wraps any MSR device: transient read errors,
  zeroed counter readbacks, counter wrap/saturation;
* :class:`FaultyMachine` — wraps a simulated machine: probe preemption,
  co-tenant noise bursts, stalls, worker crashes;
* :func:`inject_faults` — arm a machine with a spec (pass-through when the
  spec is ``None`` or inactive for the attempt);
* :func:`chaos_plan` — a deterministic per-slot fault assignment for chaos
  drills over a survey fleet;
* :class:`WriteCrashPoint` — SIGKILL at the N-th durable store write
  (kill-resume drills against the sharded survey service);
* :class:`SlotCrashPoint` / :class:`StallPoint` /
  :class:`HeartbeatFreezePoint` — poison-slot, wedged-worker, and
  dead-host drills against the fleet supervisor's lease machinery.
"""

from repro.faults.crashpoints import (
    HeartbeatFreezePoint,
    SlotCrashPoint,
    StallPoint,
    WriteCrashPoint,
)
from repro.faults.machine import FaultyMachine, inject_faults
from repro.faults.msr import FaultyMsrDevice
from repro.faults.plan import FaultBudget, FaultSpec, chaos_plan

__all__ = [
    "FaultBudget",
    "FaultSpec",
    "FaultyMachine",
    "FaultyMsrDevice",
    "HeartbeatFreezePoint",
    "SlotCrashPoint",
    "StallPoint",
    "WriteCrashPoint",
    "chaos_plan",
    "inject_faults",
]
