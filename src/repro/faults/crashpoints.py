"""Crash, stall, and freeze fault points for durability drills.

The fault machinery of this package perturbs *measurement*; this module
perturbs *process lifecycle and persistence*. A :class:`WriteCrashPoint` is
armed as the ``on_write`` hook of a :class:`~repro.store.segments.JsonlLog`
(via the survey service) and SIGKILLs the process at the N-th durable write
— no ``atexit``, no ``finally``, no flush, exactly like a power-cut or
OOM-kill landing between a record append and its journal entry. The
kill-resume chaos drill uses it to prove that ``--resume`` after an
arbitrary write crash converges to a bit-identical database.

The supervisor drills add the two failure shapes a lease layer exists to
catch: :class:`StallPoint` (worker stops making slot progress but its
heartbeat thread keeps beating — a *wedged* owner) and
:class:`HeartbeatFreezePoint` (heartbeats stop while the process hangs — a
*dead/partitioned* owner, since a frozen heart with frozen progress is
indistinguishable from a crashed host to any remote observer).
"""

from __future__ import annotations

import os
import signal
import time


class WriteCrashPoint:
    """SIGKILL the current process at the ``at_write``-th durable write.

    Counts calls to :meth:`__call__`; the hook is invoked *after* the
    record hit the disk (write + fsync) but *before* any dependent state
    (journal entry, manifest update) — the worst-ordered crash a survey
    writer can suffer.
    """

    def __init__(self, at_write: int):
        if at_write < 1:
            raise ValueError("at_write must be >= 1")
        self.at_write = at_write
        self.writes = 0

    def __call__(self) -> None:
        self.writes += 1
        if self.writes >= self.at_write:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - kills the test process


class SlotCrashPoint:
    """SIGKILL the worker the moment it starts mapping ``slot``.

    Armed as the runner's ``slot_started`` hook. Unlike
    :class:`~repro.faults.plan.FaultSpec` worker crashes (which the
    runner's own retry budget absorbs in-process), this kills the whole
    shard worker — the deterministic "poison slot" that murders every
    owner the supervisor assigns, until the supervisor quarantines it.
    """

    def __init__(self, slot: int):
        self.slot = slot

    def __call__(self, index: int) -> None:
        if index == self.slot:  # pragma: no cover - kills the test process
            os.kill(os.getpid(), signal.SIGKILL)


class StallPoint:
    """Hang the worker after its ``after_writes``-th durable write.

    Armed as an ``on_write`` hook. The write itself completes (journal
    consistent), then the hook sleeps far past any stall deadline — slot
    progress freezes while the heartbeat daemon thread keeps the lease
    fresh. The supervisor must diagnose this as *wedged* (alive but
    useless) and SIGKILL + reassign; nothing inside the process will.
    """

    def __init__(self, after_writes: int, sleep_seconds: float = 3600.0):
        if after_writes < 1:
            raise ValueError("after_writes must be >= 1")
        self.after_writes = after_writes
        self.sleep_seconds = sleep_seconds
        self.writes = 0

    def __call__(self) -> None:
        self.writes += 1
        if self.writes >= self.after_writes:
            time.sleep(self.sleep_seconds)  # pragma: no cover - supervisor kills us


class HeartbeatFreezePoint:
    """Freeze the worker's heart after ``after_beats`` lease beats.

    Armed as the ``on_beat`` hook of a
    :class:`~repro.store.lease.LeaseHeartbeat`: returning True tells the
    heart to skip this and every later write, so the lease's beat counter
    goes stale while the process lives on — exactly what a network
    partition or a SIGSTOP'd host looks like from the supervisor's side.
    Combine with a :class:`StallPoint` to model a fully hung host (a
    freeze alone would race shard completion on fast fleets).
    """

    def __init__(self, after_beats: int):
        if after_beats < 1:
            raise ValueError("after_beats must be >= 1")
        self.after_beats = after_beats

    def __call__(self, beats: int) -> bool:
        return beats > self.after_beats
