"""Crash-at-write fault points for durability drills.

The fault machinery of this package perturbs *measurement*; this module
perturbs *persistence*. A :class:`WriteCrashPoint` is armed as the
``on_write`` hook of a :class:`~repro.store.segments.JsonlLog` (via the
survey service) and SIGKILLs the process at the N-th durable write — no
``atexit``, no ``finally``, no flush, exactly like a power-cut or OOM-kill
landing between a record append and its journal entry. The kill-resume
chaos drill uses it to prove that ``--resume`` after an arbitrary write
crash converges to a bit-identical database.
"""

from __future__ import annotations

import os
import signal


class WriteCrashPoint:
    """SIGKILL the current process at the ``at_write``-th durable write.

    Counts calls to :meth:`__call__`; the hook is invoked *after* the
    record hit the disk (write + fsync) but *before* any dependent state
    (journal entry, manifest update) — the worst-ordered crash a survey
    writer can suffer.
    """

    def __init__(self, at_write: int):
        if at_write < 1:
            raise ValueError("at_write must be >= 1")
        self.at_write = at_write
        self.writes = 0

    def __call__(self) -> None:
        self.writes += 1
        if self.writes >= self.at_write:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - kills the test process
