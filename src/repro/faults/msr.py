"""MSR-level fault injection: flaky reads, dropped readbacks, wraps."""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultBudget, FaultSpec
from repro.msr.constants import ChaBlockOffset, cha_of_msr
from repro.msr.device import MsrDevice, TransientMsrError

_CTR_OFFSETS = frozenset(
    (ChaBlockOffset.CTR0, ChaBlockOffset.CTR1, ChaBlockOffset.CTR2, ChaBlockOffset.CTR3)
)


def is_counter_addr(addr: int) -> bool:
    """Whether ``addr`` is a CHA PMON counter register (CTR0..CTR3)."""
    decoded = cha_of_msr(addr)
    return decoded is not None and decoded[1] in _CTR_OFFSETS


class FaultyMsrDevice:
    """An :class:`~repro.msr.device.MsrDevice` with injected access faults.

    Wraps any device (the in-memory register file, the file-backed tree,
    real hardware) and perturbs only what real failures perturb:

    * any read may raise :class:`~repro.msr.device.TransientMsrError`
      (driver contention / interrupt storms);
    * counter reads may come back zeroed (a dropped readback) or wrapped
      modulo ``2**counter_wrap_bits`` (narrow/saturating counters);
    * control reads, writes, and non-counter registers pass through
      untouched, so the PMON programming sequence itself stays sound.

    All randomness comes from the injector's own seeded stream — the
    wrapped machine's RNG never sees a different draw order, which keeps
    fault-free components bit-identical to an uninjected run.
    """

    def __init__(
        self,
        inner: MsrDevice,
        spec: FaultSpec,
        rng: np.random.Generator,
        budget: FaultBudget | None = None,
        tracer=None,
    ):
        if tracer is None:
            from repro.telemetry.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self._inner = inner
        self._spec = spec
        self._rng = rng
        self._budget = budget if budget is not None else FaultBudget(spec.max_faults)
        self._c_read_error = tracer.counter("faults_injected_total", kind="msr_read_error")
        self._c_zero_read = tracer.counter("faults_injected_total", kind="msr_zero_read")

    @property
    def faults_fired(self) -> int:
        return self._budget.fired

    def _fire(self, rate: float) -> bool:
        # Draw first so the injector's stream position does not depend on
        # the remaining budget — same spec + seed ⇒ same fault schedule.
        return rate > 0.0 and self._rng.random() < rate and self._budget.spend()

    # -- MsrDevice interface -----------------------------------------------------
    def read(self, os_cpu: int, addr: int) -> int:
        if self._fire(self._spec.msr_read_error_rate):
            self._c_read_error.inc()
            raise TransientMsrError(
                f"injected transient read fault at CPU {os_cpu} MSR {addr:#x}"
            )
        value = self._inner.read(os_cpu, addr)
        if is_counter_addr(addr):
            if self._fire(self._spec.msr_zero_read_rate):
                self._c_zero_read.inc()
                return 0
            if self._spec.counter_wrap_bits is not None:
                value &= (1 << self._spec.counter_wrap_bits) - 1
        return value

    def write(self, os_cpu: int, addr: int, value: int) -> None:
        self._inner.write(os_cpu, addr, value)

    def read_many(self, os_cpu: int, addrs) -> np.ndarray:
        """Batched counterpart: faults hit the whole readback at once."""
        if self._fire(self._spec.msr_read_error_rate):
            self._c_read_error.inc()
            raise TransientMsrError(
                f"injected transient block-read fault at CPU {os_cpu}"
            )
        read_many = getattr(self._inner, "read_many", None)
        if read_many is not None:
            values = np.array(read_many(os_cpu, addrs), dtype=np.int64)
        else:
            values = np.array(
                [self._inner.read(os_cpu, int(a)) for a in np.asarray(addrs)],
                dtype=np.int64,
            )
        counter_mask = np.array([is_counter_addr(int(a)) for a in np.asarray(addrs)])
        if counter_mask.any():
            if self._fire(self._spec.msr_zero_read_rate):
                self._c_zero_read.inc()
                values = values.copy()
                values[counter_mask] = 0  # one dropped whole-package readback
            if self._spec.counter_wrap_bits is not None:
                values = values.copy()
                values[counter_mask] &= (1 << self._spec.counter_wrap_bits) - 1
        return values
