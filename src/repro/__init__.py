"""Reproduction of "Know Your Neighbor: Physically Locating Xeon Processor
Cores on the Core Tile Grid" (Hyungmin Cho, DATE 2022).

Quickstart::

    from repro import build_machine_for_sku, map_cpu, XEON_8259CL

    machine = build_machine_for_sku(XEON_8259CL, instance_seed=7)
    result = map_cpu(machine)
    print(result.core_map.render())

Package layout:

* ``repro.core`` — the paper's contribution: the three-step core-locating
  pipeline (§II) and its ILP reconstruction (§II-C);
* ``repro.covert`` — the inter-core thermal covert channel (§IV/§V);
* ``repro.mesh`` / ``repro.cache`` / ``repro.msr`` / ``repro.uncore`` /
  ``repro.platform`` / ``repro.sim`` / ``repro.thermal`` — the substrates
  standing in for the Xeon hardware and the cloud fleet;
* ``repro.ilp`` — the MILP solver substrate (its ``__all__`` is the
  authoritative solver-layer surface; ``resolve_solver`` is the one way to
  turn a name/spec/instance into a backend);
* ``repro.placement`` — consumes recovered maps: covert-pair selection and
  co-tenant scheduling over the physical tile grid (§IV/§V applied);
* ``repro.experiments`` — one module per paper table/figure
  (``python -m repro.experiments --list``).
"""

from repro.core import MappingConfig, MappingResult, RetryPolicy, map_cpu
from repro.core.coremap import CoreMap
from repro.ilp import BackendSpec, resolve_solver
from repro.mesh import HopMatrix
from repro.placement import (
    FleetPlacement,
    JobSpec,
    PlacementResult,
    place_over_fleet,
    place_pairs,
    schedule_jobs,
)
from repro.platform import (
    SKU_CATALOG,
    XEON_6354,
    XEON_8124M,
    XEON_8175M,
    XEON_8259CL,
    CpuInstance,
    generate_fleet,
)
from repro.sim import NoiseConfig, SimulatedMachine, build_machine, build_machine_for_sku
from repro.survey import FailureBudget, ShardSpec, SurveyRunner, SurveyService
from repro.telemetry import Tracer

__version__ = "1.0.0"

__all__ = [
    "MappingConfig",
    "MappingResult",
    "RetryPolicy",
    "map_cpu",
    "FailureBudget",
    "ShardSpec",
    "SurveyRunner",
    "SurveyService",
    "Tracer",
    "CoreMap",
    "SKU_CATALOG",
    "XEON_6354",
    "XEON_8124M",
    "XEON_8175M",
    "XEON_8259CL",
    "CpuInstance",
    "generate_fleet",
    "NoiseConfig",
    "SimulatedMachine",
    "build_machine",
    "build_machine_for_sku",
    "BackendSpec",
    "resolve_solver",
    "HopMatrix",
    "FleetPlacement",
    "JobSpec",
    "PlacementResult",
    "place_over_fleet",
    "place_pairs",
    "schedule_jobs",
    "__version__",
]
