"""A small MILP modelling layer.

Supports exactly what the §II-C formulation needs — integer/binary/continuous
variables with bounds, linear constraints built with natural operator
syntax, and a linear objective:

>>> m = Model("demo")
>>> x = m.add_integer("x", lo=0, hi=10)
>>> y = m.add_binary("y")
>>> m.add_constraint(x + 5 * y <= 8, name="cap")
>>> m.minimize(-x - 2 * y)
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


@dataclass(frozen=True)
class Variable:
    """A decision variable; identified by its index within its model."""

    index: int
    name: str
    var_type: VarType
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"variable {self.name}: lo {self.lo} > hi {self.hi}")

    # -- expression building -------------------------------------------------
    def _expr(self) -> "LinearExpr":
        return LinearExpr({self.index: 1.0}, 0.0)

    def __add__(self, other) -> "LinearExpr":
        return self._expr() + other

    def __radd__(self, other) -> "LinearExpr":
        return self._expr() + other

    def __sub__(self, other) -> "LinearExpr":
        return self._expr() - other

    def __rsub__(self, other) -> "LinearExpr":
        return (-1.0) * self._expr() + other

    def __mul__(self, coeff) -> "LinearExpr":
        return self._expr() * coeff

    def __rmul__(self, coeff) -> "LinearExpr":
        return self._expr() * coeff

    def __neg__(self) -> "LinearExpr":
        return self._expr() * -1.0

    def __le__(self, other) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self._expr() >= other

    # NOTE: Variable is a frozen dataclass, so ``==`` is identity-style
    # comparison; use ``Variable.eq(rhs)`` or ``expr == rhs`` on LinearExpr
    # for equality constraints.
    def eq(self, other) -> "Constraint":
        return self._expr().make_eq(other)


class LinearExpr:
    """An immutable linear expression ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: dict[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    @classmethod
    def raw(cls, coeffs: dict[int, float], constant: float = 0.0) -> "LinearExpr":
        """Wrap an already-built coefficient dict without copying it.

        The operator chain above allocates one intermediate dict per ``+``;
        the layout-model fast build path accumulates each row's dict once
        and hands it over here. The caller must not mutate ``coeffs``
        afterwards — the expression takes ownership.
        """
        expr = cls.__new__(cls)
        expr.coeffs = coeffs
        expr.constant = float(constant)
        return expr

    @staticmethod
    def _coerce(other) -> "LinearExpr":
        if isinstance(other, LinearExpr):
            return other
        if isinstance(other, Variable):
            return other._expr()
        if isinstance(other, (int, float, np.integer, np.floating)):
            return LinearExpr({}, float(other))
        raise TypeError(f"cannot use {type(other).__name__} in a linear expression")

    def __add__(self, other) -> "LinearExpr":
        o = self._coerce(other)
        coeffs = dict(self.coeffs)
        for idx, c in o.coeffs.items():
            coeffs[idx] = coeffs.get(idx, 0.0) + c
        return LinearExpr(coeffs, self.constant + o.constant)

    __radd__ = __add__

    def __sub__(self, other) -> "LinearExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpr":
        return self._coerce(other) + (self * -1.0)

    def __mul__(self, coeff) -> "LinearExpr":
        if not isinstance(coeff, (int, float, np.integer, np.floating)):
            raise TypeError("linear expressions can only be scaled by numbers")
        k = float(coeff)
        return LinearExpr({i: c * k for i, c in self.coeffs.items()}, self.constant * k)

    __rmul__ = __mul__

    def __neg__(self) -> "LinearExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), Sense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), Sense.GE)

    def make_eq(self, other) -> "Constraint":
        """Build an equality constraint (``==`` is kept for object identity)."""
        return Constraint(self - self._coerce(other), Sense.EQ)

    def evaluate(self, values: np.ndarray) -> float:
        """Evaluate the expression given a dense variable-value vector."""
        return self.constant + sum(c * values[i] for i, c in self.coeffs.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = [f"{c:+g}*x{i}" for i, c in sorted(self.coeffs.items())]
        return f"LinearExpr({' '.join(terms)} {self.constant:+g})"


def lin_sum(items: Iterable) -> LinearExpr:
    """Sum variables/expressions into a single :class:`LinearExpr`.

    Accumulates into one coefficient dict instead of chaining ``+`` (which
    would copy the partial sum per term, quadratic in the term count).
    """
    coeffs: dict[int, float] = {}
    constant = 0.0
    for item in items:
        if isinstance(item, Variable):
            coeffs[item.index] = coeffs.get(item.index, 0.0) + 1.0
            continue
        e = LinearExpr._coerce(item)
        constant += e.constant
        for i, c in e.coeffs.items():
            coeffs[i] = coeffs.get(i, 0.0) + c
    return LinearExpr(coeffs, constant)


class Sense(enum.Enum):
    """Constraint sense, normalised as ``expr <sense> 0``."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0``."""

    expr: LinearExpr
    sense: Sense
    name: str = ""

    def violation(self, values: np.ndarray) -> float:
        """Amount by which the constraint is violated at ``values`` (0 if met)."""
        v = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return max(0.0, v)
        if self.sense is Sense.GE:
            return max(0.0, -v)
        return abs(v)


@dataclass
class Model:
    """A MILP: variables, constraints, and a minimisation objective."""

    name: str = "model"
    variables: list[Variable] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)
    objective: LinearExpr = field(default_factory=LinearExpr)

    # -- variable creation ----------------------------------------------------
    def add_variable(
        self,
        name: str,
        var_type: VarType = VarType.CONTINUOUS,
        lo: float = 0.0,
        hi: float = math.inf,
    ) -> Variable:
        var = Variable(len(self.variables), name, var_type, float(lo), float(hi))
        self.variables.append(var)
        return var

    def add_integer(self, name: str, lo: int = 0, hi: int | float = math.inf) -> Variable:
        return self.add_variable(name, VarType.INTEGER, lo, hi)

    def add_binary(self, name: str) -> Variable:
        return self.add_variable(name, VarType.BINARY, 0.0, 1.0)

    def add_continuous(self, name: str, lo: float = 0.0, hi: float = math.inf) -> Variable:
        return self.add_variable(name, VarType.CONTINUOUS, lo, hi)

    # -- constraints / objective ----------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (did you compare a "
                "Variable with '=='? use .eq() or expr.make_eq())"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_row(
        self,
        coeffs: dict[int, float],
        constant: float,
        sense: "Sense",
        name: str = "",
    ) -> Constraint:
        """Append a constraint from a raw coefficient dict (no expr algebra).

        ``coeffs``/``constant`` describe the normalised form
        ``sum(coeff_i * x_i) + constant <sense> 0`` — exactly what the
        operator chain would have produced, including insertion order and
        explicit zero coefficients (both of which the sparse lowering and
        therefore bit-identity depend on). Ownership of ``coeffs`` passes
        to the constraint.
        """
        con = Constraint(LinearExpr.raw(coeffs, constant), sense, name)
        self.constraints.append(con)
        return con

    def minimize(self, expr) -> None:
        self.objective = LinearExpr._coerce(expr)

    # -- dense form -----------------------------------------------------------
    def to_arrays(self) -> "ModelArrays":
        """Lower the model to dense arrays for the numeric solvers.

        Constraints are normalised to ``A_ub @ x <= b_ub`` and
        ``A_eq @ x == b_eq``.
        """
        n = len(self.variables)
        c = np.zeros(n)
        for i, coeff in self.objective.coeffs.items():
            c[i] = coeff

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for con in self.constraints:
            row = np.zeros(n)
            for i, coeff in con.expr.coeffs.items():
                row[i] = coeff
            rhs = -con.expr.constant
            if con.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif con.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        lo = np.array([v.lo for v in self.variables])
        hi = np.array([v.hi for v in self.variables])
        integrality = np.array(
            [1 if v.var_type in (VarType.INTEGER, VarType.BINARY) else 0 for v in self.variables]
        )
        return ModelArrays(
            c=c,
            a_ub=np.array(ub_rows) if ub_rows else np.zeros((0, n)),
            b_ub=np.array(ub_rhs) if ub_rhs else np.zeros(0),
            a_eq=np.array(eq_rows) if eq_rows else np.zeros((0, n)),
            b_eq=np.array(eq_rhs) if eq_rhs else np.zeros(0),
            lo=lo,
            hi=hi,
            integrality=integrality,
            objective_constant=self.objective.constant,
        )

    def to_coo(self) -> "ModelArrays":
        """Sparse lowering: like :meth:`to_arrays` but with CSR matrices.

        The layout model's constraint matrix is >99% zeros (each row touches
        two to four variables out of hundreds), so building COO triplets and
        handing HiGHS a CSR matrix skips materialising the dense rows
        entirely. The nonzero values are identical to the dense lowering —
        the solver sees the same model either way.
        """
        from scipy.sparse import csr_array

        n = len(self.variables)
        c = np.zeros(n)
        for i, coeff in self.objective.coeffs.items():
            c[i] = coeff

        ub_r: list[int] = []
        ub_c: list[int] = []
        ub_v: list[float] = []
        ub_rhs: list[float] = []
        eq_r: list[int] = []
        eq_c: list[int] = []
        eq_v: list[float] = []
        eq_rhs: list[float] = []
        for con in self.constraints:
            rhs = -con.expr.constant
            if con.sense is Sense.EQ:
                row = len(eq_rhs)
                for i, coeff in con.expr.coeffs.items():
                    eq_r.append(row)
                    eq_c.append(i)
                    eq_v.append(coeff)
                eq_rhs.append(rhs)
                continue
            sign = 1.0 if con.sense is Sense.LE else -1.0
            row = len(ub_rhs)
            for i, coeff in con.expr.coeffs.items():
                ub_r.append(row)
                ub_c.append(i)
                ub_v.append(sign * coeff)
            ub_rhs.append(sign * rhs)

        lo = np.array([v.lo for v in self.variables])
        hi = np.array([v.hi for v in self.variables])
        integrality = np.array(
            [1 if v.var_type in (VarType.INTEGER, VarType.BINARY) else 0 for v in self.variables]
        )
        return ModelArrays(
            c=c,
            a_ub=csr_array((ub_v, (ub_r, ub_c)), shape=(len(ub_rhs), n)),
            b_ub=np.array(ub_rhs),
            a_eq=csr_array((eq_v, (eq_r, eq_c)), shape=(len(eq_rhs), n)),
            b_eq=np.array(eq_rhs),
            lo=lo,
            hi=hi,
            integrality=integrality,
            objective_constant=self.objective.constant,
        )

    def is_feasible(self, values: np.ndarray, tol: float = 1e-6) -> bool:
        """Check a candidate assignment against bounds, integrality, constraints."""
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self.variables),):
            raise ValueError("value vector has wrong length")
        for var in self.variables:
            v = values[var.index]
            if v < var.lo - tol or v > var.hi + tol:
                return False
            if var.var_type in (VarType.INTEGER, VarType.BINARY):
                if abs(v - round(v)) > tol:
                    return False
        return all(con.violation(values) <= tol for con in self.constraints)

    def objective_value(self, values: np.ndarray) -> float:
        return self.objective.evaluate(np.asarray(values, dtype=float))


@dataclass
class ModelArrays:
    """Dense lowering of a :class:`Model` (minimise ``c @ x``)."""

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    integrality: np.ndarray
    objective_constant: float
