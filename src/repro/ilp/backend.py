"""The pluggable solver-backend layer (ROADMAP item 1).

Every MILP backend in this package — HiGHS via SciPy, the from-scratch
branch-and-bound, the optional PuLP/CBC adapter, and the racing
:class:`~repro.ilp.portfolio.PortfolioSolver` — implements one protocol:

``solve(model, *, warm_start=None, deadline=None) -> Solution``

plus three capability flags the callers dispatch on:

* ``supports_warm_start`` — the backend can consume a :class:`WarmStart`
  hint (a candidate assignment, e.g. from the PR-7 pattern cache). Hints
  are advisory: a backend must produce the same *optimal* answer with or
  without one, and must discard an infeasible hint.
* ``is_exact`` — an ``INFEASIBLE``/``UNBOUNDED`` verdict from this backend
  is definitive (a heuristic or node-limited solver can only prove
  feasibility, never infeasibility).
* ``is_anytime`` — interrupted mid-solve (deadline, cancellation), the
  backend returns its best incumbent instead of nothing.

Backends register here under a short name with a fixed **priority**; lower
priority wins. The priority order is what makes the portfolio
deterministic: whichever lane finishes first, the *returned* result is
always the definitive result of the highest-priority lane that produced
one, so records stay byte-reproducible regardless of race timing.

``deadline`` values are absolute :func:`time.monotonic` timestamps —
comparable across the threads and (on Linux) the forked processes a
portfolio solve fans out to.
"""

from __future__ import annotations

import inspect
import math
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus


class BackendUnavailable(RuntimeError):
    """The requested backend's optional dependency is not installed."""


@dataclass(frozen=True)
class WarmStart:
    """A candidate assignment offered to a backend as a starting hint.

    ``values`` is a dense variable-value vector in model variable order
    (the same shape :attr:`repro.ilp.solution.Solution.values` has).
    ``source`` records where the hint came from (``"pattern-cache"``,
    ``"degradation"``, …) for telemetry only.
    """

    values: np.ndarray
    source: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", np.asarray(self.values, dtype=float)
        )


@runtime_checkable
class SolverBackend(Protocol):
    """What the reconstruction layer requires of a MILP solver."""

    #: Registry name (``"highs"``, ``"bnb"``, ``"cbc"``, ``"portfolio"``).
    name: str
    #: The backend can consume :class:`WarmStart` hints.
    supports_warm_start: bool
    #: INFEASIBLE/UNBOUNDED verdicts from this backend are definitive.
    is_exact: bool
    #: Interrupted, the backend returns its best incumbent so far.
    is_anytime: bool

    def solve(
        self,
        model: Model,
        *,
        warm_start: WarmStart | None = None,
        deadline: float | None = None,
    ) -> Solution: ...


def definitive(solution: Solution, backend: Any) -> bool:
    """Whether ``solution`` settles the instance for a deterministic caller.

    ``OPTIMAL`` always does; ``INFEASIBLE``/``UNBOUNDED`` only from an
    exact backend (an anytime/heuristic lane hitting its node limit proves
    nothing). ``NODE_LIMIT``/``ERROR`` never do — the portfolio falls
    through to the next priority lane on those.
    """
    if solution.status is SolveStatus.OPTIMAL:
        return True
    if solution.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED):
        return bool(getattr(backend, "is_exact", False))
    return False


# -- registry ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendSpec:
    """One registered backend: how to build it and where it ranks."""

    name: str
    factory: Callable[..., Any]
    priority: int
    #: Zero-argument availability probe (optional-dependency backends).
    available: Callable[[], bool] = lambda: True
    #: The factory accepts a ``tracer=`` keyword.
    accepts_tracer: bool = False
    doc: str = ""


_REGISTRY: dict[str, BackendSpec] = {}

#: Name the reconstruction pipeline uses when no backend is requested.
DEFAULT_BACKEND = "highs"


def register_backend(
    name: str,
    factory: Callable[..., Any],
    *,
    priority: int,
    available: Callable[[], bool] | None = None,
    accepts_tracer: bool = False,
    doc: str = "",
    replace: bool = False,
) -> BackendSpec:
    """Register a backend factory under ``name`` at the given priority."""
    if not name or "/" in name:
        raise ValueError(f"invalid backend name {name!r}")
    if name in _REGISTRY and not replace:
        raise ValueError(f"backend {name!r} already registered")
    spec = BackendSpec(
        name=name,
        factory=factory,
        priority=priority,
        available=available if available is not None else (lambda: True),
        accepts_tracer=accepts_tracer,
        doc=doc,
    )
    _REGISTRY[name] = spec
    return spec


def unregister_backend(name: str) -> None:
    """Remove a backend (tests register throwaway lanes)."""
    _REGISTRY.pop(name, None)


def backend_names() -> list[str]:
    """All registered backend names in priority order (ties: name order)."""
    return [
        spec.name
        for spec in sorted(_REGISTRY.values(), key=lambda s: (s.priority, s.name))
    ]


def backend_spec(name: str) -> BackendSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown solver backend {name!r}; choose from {backend_names()}"
        )
    return spec


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its dependencies are importable."""
    spec = _REGISTRY.get(name)
    if spec is None:
        return False
    try:
        return bool(spec.available())
    except Exception:  # noqa: BLE001 - availability probes must not raise
        return False


def available_backends() -> list[str]:
    """Registered backends whose dependencies are present, priority order."""
    return [name for name in backend_names() if backend_available(name)]


def create_backend(name: str, *, tracer=None, **kwargs: Any) -> Any:
    """Instantiate a registered backend.

    Raises :class:`KeyError` for an unknown name and
    :class:`BackendUnavailable` (with an installation hint) when the
    backend is registered but its optional dependency is missing — the
    graceful skip path the differential test harness keys on.
    """
    spec = backend_spec(name)
    if not backend_available(name):
        raise BackendUnavailable(
            f"solver backend {name!r} is not available on this host"
            + (f" — {spec.doc}" if spec.doc else "")
        )
    if spec.accepts_tracer and tracer is not None:
        return spec.factory(tracer=tracer, **kwargs)
    return spec.factory(**kwargs)


def default_solver() -> Any:
    """The default MILP backend used by the reconstruction pipeline."""
    return create_backend(DEFAULT_BACKEND)


#: Capability flags every :class:`SolverBackend` must expose; their absence
#: is what marks a *legacy* bare solver object in :func:`resolve_solver`.
_CAPABILITY_FLAGS = ("supports_warm_start", "is_exact", "is_anytime")


class _LegacyBackendAdapter:
    """Wrap a pre-protocol solver object behind the SolverBackend surface.

    Early call sites passed bare objects with just a ``solve`` method;
    :func:`resolve_solver` keeps them working (with a deprecation warning)
    by assuming the most conservative capability flags and tolerating
    ``solve`` signatures that predate the keyword-only protocol.
    """

    supports_warm_start = False
    is_exact = False
    is_anytime = False

    def __init__(self, inner: Any):
        self._inner = inner
        self.name = getattr(inner, "name", type(inner).__name__)

    def solve(
        self,
        model: Model,
        *,
        warm_start: WarmStart | None = None,
        deadline: float | None = None,
    ) -> Solution:
        try:
            return self._inner.solve(
                model, warm_start=warm_start, deadline=deadline
            )
        except TypeError:
            return self._inner.solve(model)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_LegacyBackendAdapter({self._inner!r})"


def resolve_solver(spec: Any, *, tracer=None) -> Any:
    """Turn a solver *specification* into a live backend.

    This is the **single** solver-selection path — ``map_cpu``,
    ``reconstruct_map``, the placement entry points, and the ``survey``/
    ``place`` CLI subcommands all funnel through it. Accepted shapes:

    * ``None`` → the default backend;
    * a registry name string → that backend, built fresh (string specs
      stay picklable and can cross the survey worker pool);
    * a :class:`BackendSpec` → its factory invoked (availability-checked),
      so callers can hold a spec without committing to a live instance;
    * a :class:`SolverBackend` instance → returned unchanged.

    Two legacy shapes keep working behind deprecation shims:

    * a solver **class** (early call sites passed ``BranchBoundSolver``
      itself) is instantiated with no arguments;
    * a bare object with a ``solve`` method but no capability flags is
      wrapped in an adapter assuming the most conservative flags.
    """
    if spec is None:
        return default_solver()
    if isinstance(spec, str):
        return create_backend(spec, tracer=tracer)
    if isinstance(spec, BackendSpec):
        try:
            ok = bool(spec.available())
        except Exception:  # noqa: BLE001 - availability probes must not raise
            ok = False
        if not ok:
            raise BackendUnavailable(
                f"solver backend {spec.name!r} is not available on this host"
                + (f" — {spec.doc}" if spec.doc else "")
            )
        if spec.accepts_tracer and tracer is not None:
            return spec.factory(tracer=tracer)
        return spec.factory()
    if inspect.isclass(spec):
        warnings.warn(
            "passing a solver class to resolve_solver()/solver= is "
            "deprecated; pass a registry name, a BackendSpec, or an "
            "instance instead (will be removed in 2.0)",
            DeprecationWarning,
            stacklevel=2,
        )
        return spec()
    if callable(getattr(spec, "solve", None)) and not all(
        hasattr(spec, flag) for flag in _CAPABILITY_FLAGS
    ):
        warnings.warn(
            "solver objects without the SolverBackend capability flags "
            "(supports_warm_start/is_exact/is_anytime) are deprecated; "
            "implement the protocol or register the backend "
            "(will be removed in 2.0)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _LegacyBackendAdapter(spec)
    return spec


def deadline_remaining(deadline: float | None) -> float:
    """Seconds left until an absolute monotonic ``deadline`` (inf if None)."""
    if deadline is None:
        return math.inf
    import time

    return deadline - time.monotonic()


def _register_builtin_backends() -> None:
    """Register the in-tree backends (import-cycle-safe lazy factories)."""
    from repro.ilp.branch_bound import BranchBoundSolver
    from repro.ilp.scipy_backend import ScipyMilpSolver

    register_backend(
        "highs",
        ScipyMilpSolver,
        priority=0,
        doc="HiGHS via scipy.optimize.milp (default, exact)",
        replace=True,
    )
    register_backend(
        "bnb",
        BranchBoundSolver,
        priority=10,
        accepts_tracer=True,
        doc="from-scratch best-first branch and bound (exact, anytime)",
        replace=True,
    )

    from repro.ilp.pulp_backend import PulpCbcSolver, pulp_available

    register_backend(
        "cbc",
        PulpCbcSolver,
        priority=20,
        available=pulp_available,
        doc="COIN-OR CBC via PuLP; install with `pip install .[cbc]`",
        replace=True,
    )

    from repro.ilp.portfolio import PortfolioSolver

    register_backend(
        "portfolio",
        PortfolioSolver,
        priority=100,
        accepts_tracer=True,
        doc="races the exact backends, first-to-optimal wins deterministically",
        replace=True,
    )
