"""A dense two-phase primal simplex LP solver.

This is the LP substrate underneath :class:`repro.ilp.branch_bound.BranchBoundSolver`.
It is written for clarity and robustness on the small/medium instances the
test-suite and ablation benches exercise, not for raw speed; the paper-scale
reconstruction uses the HiGHS backend instead.

The solver accepts the dense :class:`~repro.ilp.model.ModelArrays` lowering:

    minimise   c @ x
    subject to a_ub @ x <= b_ub
               a_eq @ x == b_eq
               lo <= x <= hi

Internally the problem is shifted to ``y = x - lo >= 0``, finite upper bounds
become explicit rows, slack variables turn inequalities into equalities, and
phase 1 minimises the sum of artificial variables. Bland's rule is used
throughout, which guarantees termination at the cost of some extra pivots.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.ilp.model import Model, ModelArrays

_TOL = 1e-9


class LpStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class LpResult:
    status: LpStatus
    x: np.ndarray | None = None
    objective: float = float("nan")
    iterations: int = 0


class SimplexSolver:
    """Two-phase tableau simplex over :class:`ModelArrays` or :class:`Model`."""

    def __init__(self, max_iterations: int = 50_000):
        self.max_iterations = max_iterations

    # -- public API -----------------------------------------------------------
    def solve_model(self, model: Model) -> LpResult:
        """Solve the LP relaxation of ``model`` (integrality ignored)."""
        return self.solve_arrays(model.to_arrays())

    def solve_arrays(
        self,
        arrays: ModelArrays,
        lo_override: np.ndarray | None = None,
        hi_override: np.ndarray | None = None,
    ) -> LpResult:
        """Solve with optional bound overrides (used by branch & bound)."""
        lo = np.array(arrays.lo if lo_override is None else lo_override, dtype=float)
        hi = np.array(arrays.hi if hi_override is None else hi_override, dtype=float)
        if np.any(lo > hi + _TOL):
            return LpResult(LpStatus.INFEASIBLE)
        if not np.all(np.isfinite(lo)):
            raise ValueError("simplex solver requires finite lower bounds")

        n = len(arrays.c)
        # Shift to y = x - lo >= 0.
        b_ub = arrays.b_ub - arrays.a_ub @ lo if arrays.a_ub.size else arrays.b_ub.copy()
        b_eq = arrays.b_eq - arrays.a_eq @ lo if arrays.a_eq.size else arrays.b_eq.copy()

        # Finite upper bounds become extra <= rows: y_i <= hi_i - lo_i.
        bound_rows, bound_rhs = [], []
        for i in range(n):
            if math.isfinite(hi[i]):
                row = np.zeros(n)
                row[i] = 1.0
                bound_rows.append(row)
                bound_rhs.append(hi[i] - lo[i])

        a_ub = np.vstack([arrays.a_ub] + bound_rows) if bound_rows else arrays.a_ub
        b_ub = np.concatenate([b_ub, np.array(bound_rhs)]) if bound_rows else b_ub

        result = self._solve_standard(arrays.c, a_ub, b_ub, arrays.a_eq, b_eq)
        if result.status is LpStatus.OPTIMAL:
            assert result.x is not None
            x = result.x[:n] + lo
            obj = float(arrays.c @ x) + arrays.objective_constant
            return LpResult(LpStatus.OPTIMAL, x, obj, result.iterations)
        return result

    # -- core two-phase simplex ------------------------------------------------
    def _solve_standard(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
    ) -> LpResult:
        """Solve min c@y, a_ub y <= b_ub, a_eq y == b_eq, y >= 0."""
        n = len(c)
        m_ub, m_eq = len(b_ub), len(b_eq)
        m = m_ub + m_eq
        if m == 0:
            # Unconstrained besides y >= 0: optimum at 0 unless some c < 0.
            if np.any(c < -_TOL):
                return LpResult(LpStatus.UNBOUNDED)
            return LpResult(LpStatus.OPTIMAL, np.zeros(n), 0.0, 0)

        # Columns: [y (n)] [slack (m_ub)] [artificial (<= m)]
        a = np.zeros((m, n + m_ub))
        b = np.zeros(m)
        if m_ub:
            a[:m_ub, :n] = a_ub
            a[:m_ub, n : n + m_ub] = np.eye(m_ub)
            b[:m_ub] = b_ub
        if m_eq:
            a[m_ub:, :n] = a_eq
            b[m_ub:] = b_eq

        # Make rhs non-negative.
        for i in range(m):
            if b[i] < 0:
                a[i, :] *= -1.0
                b[i] *= -1.0

        # Choose a starting basis: slack column if it is +1 in its own row,
        # artificial otherwise.
        basis = [-1] * m
        art_cols: list[int] = []
        cols = [a]
        n_total = n + m_ub
        for i in range(m):
            if i < m_ub and a[i, n + i] == 1.0 and b[i] >= 0:
                basis[i] = n + i
        for i in range(m):
            if basis[i] == -1:
                col = np.zeros((m, 1))
                col[i, 0] = 1.0
                cols.append(col)
                basis[i] = n_total
                art_cols.append(n_total)
                n_total += 1
        tableau_a = np.hstack(cols)

        iterations = 0
        if art_cols:
            # Phase 1: minimise sum of artificials.
            c1 = np.zeros(n_total)
            for j in art_cols:
                c1[j] = 1.0
            status, iters = self._simplex_loop(tableau_a, b, c1, basis)
            iterations += iters
            if status is not LpStatus.OPTIMAL:
                return LpResult(status, iterations=iterations)
            if self._basic_objective(b, c1, basis) > 1e-7:
                return LpResult(LpStatus.INFEASIBLE, iterations=iterations)
            # Pivot artificials out of the basis where possible.
            for i in range(m):
                if basis[i] in art_cols:
                    pivoted = False
                    for j in range(n + m_ub):
                        if abs(tableau_a[i, j]) > _TOL and j not in basis:
                            self._pivot(tableau_a, b, basis, i, j)
                            pivoted = True
                            break
                    if not pivoted:
                        # Redundant row; artificial stays basic at value 0.
                        pass

        # Phase 2.
        c2 = np.zeros(n_total)
        c2[:n] = c
        for j in art_cols:
            c2[j] = 1e12  # keep any degenerate artificial pinned at zero
        status, iters = self._simplex_loop(tableau_a, b, c2, basis)
        iterations += iters
        if status is not LpStatus.OPTIMAL:
            return LpResult(status, iterations=iterations)

        y = np.zeros(n_total)
        for i, j in enumerate(basis):
            y[j] = b[i]
        return LpResult(LpStatus.OPTIMAL, y[:n], float(c @ y[:n]), iterations)

    @staticmethod
    def _basic_objective(b: np.ndarray, c: np.ndarray, basis: list[int]) -> float:
        return float(sum(c[j] * b[i] for i, j in enumerate(basis)))

    def _simplex_loop(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray, basis: list[int]
    ) -> tuple[LpStatus, int]:
        """Run primal simplex pivots in place with Bland's rule."""
        m, n_total = a.shape
        for iteration in range(self.max_iterations):
            # Reduced costs: r = c - c_B @ B^-1 A; tableau is kept in
            # canonical form, so r_j = c_j - sum_i c[basis[i]] * a[i, j].
            cb = c[basis]
            reduced = c - cb @ a
            entering = -1
            for j in range(n_total):  # Bland: smallest index with r_j < -tol
                if j not in basis and reduced[j] < -1e-9:
                    entering = j
                    break
            if entering < 0:
                return LpStatus.OPTIMAL, iteration
            # Ratio test (Bland: smallest basis index ties).
            leaving, best_ratio = -1, math.inf
            for i in range(m):
                if a[i, entering] > _TOL:
                    ratio = b[i] / a[i, entering]
                    if ratio < best_ratio - _TOL or (
                        abs(ratio - best_ratio) <= _TOL
                        and (leaving < 0 or basis[i] < basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return LpStatus.UNBOUNDED, iteration
            self._pivot(a, b, basis, leaving, entering)
        return LpStatus.ITERATION_LIMIT, self.max_iterations

    @staticmethod
    def _pivot(a: np.ndarray, b: np.ndarray, basis: list[int], row: int, col: int) -> None:
        """Pivot the tableau so ``col`` becomes basic in ``row``."""
        pivot = a[row, col]
        a[row, :] /= pivot
        b[row] /= pivot
        for i in range(len(b)):
            if i != row and abs(a[i, col]) > _TOL:
                factor = a[i, col]
                a[i, :] -= factor * a[row, :]
                b[i] -= factor * b[row]
                if abs(b[i]) < _TOL:
                    b[i] = 0.0
        basis[row] = col
