"""MILP backend that dispatches to ``scipy.optimize.milp`` (HiGHS).

The §II-C reconstruction with all-pairs probe observations produces on the
order of a thousand binaries and several thousand constraints; HiGHS solves
those instances in seconds, so this is the default backend of
:mod:`repro.core.reconstruct`.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.backend import deadline_remaining
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus
from repro.perf import FLAGS

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.NODE_LIMIT,  # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class ScipyMilpSolver:
    """Solve a :class:`~repro.ilp.model.Model` with HiGHS via SciPy.

    Implements the :class:`repro.ilp.backend.SolverBackend` protocol.
    ``scipy.optimize.milp`` exposes no MIP-start interface, so warm-start
    hints are accepted and ignored — which is what keeps the default
    reconstruction path byte-identical whether or not a hint is offered.
    """

    name = "highs"
    supports_warm_start = False
    is_exact = True
    # HiGHS honours time_limit, but an interrupted solve may return no
    # incumbent at all, so it does not meet the anytime contract.
    is_anytime = False

    def __init__(self, time_limit: float | None = None, mip_rel_gap: float = 0.0):
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap

    def solve(
        self,
        model: Model,
        *,
        warm_start=None,
        deadline: float | None = None,
    ) -> Solution:
        del warm_start  # no MIP-start plumbing in scipy.optimize.milp
        # The sparse lowering hands HiGHS the same nonzeros without ever
        # materialising the (overwhelmingly zero) dense rows.
        arrays = model.to_coo() if FLAGS.sparse_ilp else model.to_arrays()
        constraints = []
        if arrays.a_ub.shape[0]:
            constraints.append(
                LinearConstraint(arrays.a_ub, -np.inf, arrays.b_ub)
            )
        if arrays.a_eq.shape[0]:
            constraints.append(
                LinearConstraint(arrays.a_eq, arrays.b_eq, arrays.b_eq)
            )
        options: dict[str, object] = {"mip_rel_gap": self.mip_rel_gap}
        time_limit = self.time_limit
        if deadline is not None:
            remaining = max(deadline_remaining(deadline), 0.001)
            time_limit = remaining if time_limit is None else min(time_limit, remaining)
        if time_limit is not None:
            options["time_limit"] = time_limit

        res = milp(
            c=arrays.c,
            constraints=constraints or None,
            integrality=arrays.integrality,
            bounds=Bounds(arrays.lo, arrays.hi),
            options=options,
        )
        status = _STATUS_MAP.get(res.status, SolveStatus.ERROR)
        if res.x is None:
            return Solution(status, message=str(res.message))
        values = np.asarray(res.x, dtype=float)
        # Snap integral variables to exact integers for downstream indexing.
        int_mask = arrays.integrality.astype(bool)
        values[int_mask] = np.round(values[int_mask])
        objective = float(arrays.c @ values) + arrays.objective_constant
        return Solution(status, objective, values, message=str(res.message))
