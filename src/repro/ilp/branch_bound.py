"""A best-first branch-and-bound MILP solver.

Bounds come from an LP-relaxation solver — either the from-scratch
:class:`~repro.ilp.simplex.SimplexSolver` or SciPy's HiGHS ``linprog``
(default, much faster). Branching is on the most-fractional integral
variable; nodes are explored best-bound-first.

This solver is the "built from scratch" substrate demanded by the
reproduction; the paper-scale reconstruction instances are dispatched to
:class:`~repro.ilp.scipy_backend.ScipyMilpSolver`, and the two backends are
cross-validated in the test suite.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.ilp.backend import WarmStart, deadline_remaining
from repro.ilp.model import Model, ModelArrays
from repro.ilp.simplex import LpStatus, SimplexSolver
from repro.ilp.solution import Solution, SolveStatus

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    bound: float
    tie: int
    lo: np.ndarray = field(compare=False)
    hi: np.ndarray = field(compare=False)


class BranchBoundSolver:
    """Best-first branch and bound over a :class:`~repro.ilp.model.Model`.

    Implements the :class:`repro.ilp.backend.SolverBackend` protocol. A
    feasible :class:`~repro.ilp.backend.WarmStart` seeds the incumbent
    (tightening pruning from node one); an infeasible hint is discarded.
    ``deadline`` and the cooperative ``cancel`` event are polled once per
    node — an interrupted solve returns the best incumbent found so far
    with ``NODE_LIMIT`` status, never a spurious ``OPTIMAL``.
    """

    name = "bnb"
    supports_warm_start = True
    is_exact = True
    is_anytime = True

    def __init__(
        self,
        relaxation: str = "highs",
        max_nodes: int = 20_000,
        gap_tolerance: float = 1e-9,
        tracer=None,
    ):
        if relaxation not in ("highs", "simplex"):
            raise ValueError(f"unknown relaxation solver {relaxation!r}")
        self.relaxation = relaxation
        self.max_nodes = max_nodes
        self.gap_tolerance = gap_tolerance
        self._simplex = SimplexSolver()
        if tracer is None:
            from repro.telemetry.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self._c_relaxations = tracer.counter("ilp_bb_relaxations_total")
        self._c_nodes = tracer.counter("ilp_bb_nodes_total")
        self._c_incumbents = tracer.counter("ilp_bb_incumbents_total")

    # -- relaxation dispatch ----------------------------------------------------
    def _solve_relaxation(
        self, arrays: ModelArrays, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[str, np.ndarray | None, float]:
        """Return (status, x, objective) of the LP relaxation with given bounds."""
        self._c_relaxations.inc()
        if self.relaxation == "simplex":
            res = self._simplex.solve_arrays(arrays, lo, hi)
            if res.status is LpStatus.OPTIMAL:
                return "optimal", res.x, res.objective
            if res.status is LpStatus.UNBOUNDED:
                return "unbounded", None, -math.inf
            return "infeasible", None, math.inf
        res = linprog(
            arrays.c,
            A_ub=arrays.a_ub if arrays.a_ub.size else None,
            b_ub=arrays.b_ub if arrays.b_ub.size else None,
            A_eq=arrays.a_eq if arrays.a_eq.size else None,
            b_eq=arrays.b_eq if arrays.b_eq.size else None,
            bounds=list(zip(lo, np.where(np.isfinite(hi), hi, None))),
            method="highs",
        )
        if res.status == 0:
            return "optimal", res.x, float(res.fun) + arrays.objective_constant
        if res.status == 3:
            return "unbounded", None, -math.inf
        return "infeasible", None, math.inf

    # -- main loop ---------------------------------------------------------------
    def solve(
        self,
        model: Model,
        *,
        warm_start: WarmStart | None = None,
        deadline: float | None = None,
        cancel=None,
    ) -> Solution:
        arrays = model.to_arrays()
        int_mask = arrays.integrality.astype(bool)
        tie = itertools.count()

        root_lo = arrays.lo.copy()
        root_hi = arrays.hi.copy()
        status, x, bound = self._solve_relaxation(arrays, root_lo, root_hi)
        if status == "infeasible":
            return Solution(SolveStatus.INFEASIBLE, message="root LP infeasible")
        if status == "unbounded":
            return Solution(SolveStatus.UNBOUNDED, message="root LP unbounded")

        heap: list[_Node] = [_Node(bound, next(tie), root_lo, root_hi)]
        incumbent: np.ndarray | None = None
        incumbent_obj = math.inf
        nodes = 0
        interrupted = False

        if warm_start is not None and warm_start.values.shape == arrays.c.shape:
            hint = warm_start.values.copy()
            hint[int_mask] = np.round(hint[int_mask])
            # Hints are advisory: only a verified-feasible assignment may
            # seed the incumbent, so a poisoned hint cannot skew the answer.
            if model.is_feasible(hint):
                incumbent = hint
                incumbent_obj = float(arrays.c @ hint) + arrays.objective_constant
                self._c_incumbents.inc()

        while heap and nodes < self.max_nodes:
            if (cancel is not None and cancel.is_set()) or (
                deadline is not None and deadline_remaining(deadline) <= 0.0
            ):
                interrupted = True
                break
            node = heapq.heappop(heap)
            if node.bound >= incumbent_obj - self.gap_tolerance:
                continue  # pruned by bound
            status, x, bound = self._solve_relaxation(arrays, node.lo, node.hi)
            nodes += 1
            self._c_nodes.inc()
            if status != "optimal" or x is None:
                continue
            if bound >= incumbent_obj - self.gap_tolerance:
                continue

            frac_idx = self._most_fractional(x, int_mask)
            if frac_idx is None:
                # Integral solution: new incumbent.
                rounded = x.copy()
                rounded[int_mask] = np.round(rounded[int_mask])
                obj = float(arrays.c @ rounded) + arrays.objective_constant
                if obj < incumbent_obj:
                    incumbent_obj = obj
                    incumbent = rounded
                    self._c_incumbents.inc()
                continue

            value = x[frac_idx]
            # Down branch: x <= floor(value).
            lo_d, hi_d = node.lo.copy(), node.hi.copy()
            hi_d[frac_idx] = math.floor(value)
            if lo_d[frac_idx] <= hi_d[frac_idx]:
                heapq.heappush(heap, _Node(bound, next(tie), lo_d, hi_d))
            # Up branch: x >= ceil(value).
            lo_u, hi_u = node.lo.copy(), node.hi.copy()
            lo_u[frac_idx] = math.ceil(value)
            if lo_u[frac_idx] <= hi_u[frac_idx]:
                heapq.heappush(heap, _Node(bound, next(tie), lo_u, hi_u))

        if interrupted:
            # Anytime contract: hand back whatever incumbent exists, but
            # never claim optimality for a search that did not finish.
            if incumbent is not None:
                return Solution(
                    SolveStatus.NODE_LIMIT, incumbent_obj, incumbent, nodes,
                    message="interrupted",
                )
            return Solution(
                SolveStatus.NODE_LIMIT, nodes_explored=nodes, message="interrupted"
            )
        if incumbent is not None:
            exhausted = not heap or all(
                n.bound >= incumbent_obj - self.gap_tolerance for n in heap
            )
            status_out = SolveStatus.OPTIMAL if exhausted or nodes < self.max_nodes else SolveStatus.NODE_LIMIT
            if heap and nodes >= self.max_nodes:
                status_out = SolveStatus.NODE_LIMIT
            return Solution(status_out, incumbent_obj, incumbent, nodes)
        if nodes >= self.max_nodes:
            return Solution(SolveStatus.NODE_LIMIT, nodes_explored=nodes, message="node limit hit")
        return Solution(SolveStatus.INFEASIBLE, nodes_explored=nodes)

    @staticmethod
    def _most_fractional(x: np.ndarray, int_mask: np.ndarray) -> int | None:
        """Index of the integral variable farthest from an integer, or None."""
        best_idx, best_frac = None, _INT_TOL
        for i in np.flatnonzero(int_mask):
            frac = abs(x[i] - round(x[i]))
            if frac > best_frac:
                best_frac = frac
                best_idx = int(i)
        return best_idx
