"""Optional MILP backend: COIN-OR CBC driven through PuLP.

PuLP is *not* a hard dependency of this package — install it with
``pip install .[cbc]``. Everything here degrades gracefully when it is
absent: :func:`pulp_available` returns False, the registry hides the
``"cbc"`` name from :func:`repro.ilp.backend.available_backends`, and
constructing :class:`PulpCbcSolver` raises
:class:`~repro.ilp.backend.BackendUnavailable` so the differential test
harness can skip per-backend instead of erroring.

The model translation follows the classic PuLP ILP idiom (one LpVariable
per model variable, constraints re-emitted term by term); CBC supports MIP
starts, so :class:`~repro.ilp.backend.WarmStart` hints are forwarded via
``setInitialValue`` + ``warmStart=True``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ilp.backend import BackendUnavailable, WarmStart, deadline_remaining
from repro.ilp.model import Model, Sense, VarType
from repro.ilp.solution import Solution, SolveStatus

try:  # pragma: no cover - exercised only on hosts with the extra installed
    import pulp as _pulp
except ImportError:  # pragma: no cover
    _pulp = None


def pulp_available() -> bool:
    """Whether the optional PuLP/CBC stack is importable and usable."""
    if _pulp is None:
        return False
    try:
        return bool(_pulp.PULP_CBC_CMD(msg=False).available())
    except Exception:  # noqa: BLE001 - a broken CBC binary means "absent"
        return False


# LpStatus codes: 1 optimal, 0 not solved, -1 infeasible, -2 unbounded,
# -3 undefined.
_STATUS_MAP = {
    1: SolveStatus.OPTIMAL,
    0: SolveStatus.NODE_LIMIT,
    -1: SolveStatus.INFEASIBLE,
    -2: SolveStatus.UNBOUNDED,
    -3: SolveStatus.ERROR,
}


class PulpCbcSolver:
    """Solve a :class:`~repro.ilp.model.Model` with CBC via PuLP."""

    name = "cbc"
    supports_warm_start = True
    is_exact = True
    is_anytime = False

    def __init__(self, time_limit: float | None = None, gap_rel: float = 0.0):
        if not pulp_available():
            raise BackendUnavailable(
                "PuLP/CBC is not installed; install with `pip install .[cbc]`"
            )
        self.time_limit = time_limit
        self.gap_rel = gap_rel

    def solve(
        self,
        model: Model,
        *,
        warm_start: WarmStart | None = None,
        deadline: float | None = None,
    ) -> Solution:
        prob = _pulp.LpProblem(model.name or "model", _pulp.LpMinimize)
        lp_vars = []
        for var in model.variables:
            lo = None if math.isinf(var.lo) else var.lo
            hi = None if math.isinf(var.hi) else var.hi
            cat = (
                _pulp.LpContinuous
                if var.var_type is VarType.CONTINUOUS
                else _pulp.LpInteger
            )
            lp_vars.append(
                _pulp.LpVariable(f"x{var.index}", lowBound=lo, upBound=hi, cat=cat)
            )

        obj = _pulp.lpSum(
            coeff * lp_vars[idx] for idx, coeff in model.objective.coeffs.items()
        )
        prob += obj + model.objective.constant

        for i, con in enumerate(model.constraints):
            expr = _pulp.lpSum(
                coeff * lp_vars[idx] for idx, coeff in con.expr.coeffs.items()
            )
            rhs = -con.expr.constant
            if con.sense is Sense.LE:
                prob += expr <= rhs, con.name or f"c{i}"
            elif con.sense is Sense.GE:
                prob += expr >= rhs, con.name or f"c{i}"
            else:
                prob += expr == rhs, con.name or f"c{i}"

        use_mip_start = False
        if warm_start is not None and warm_start.values.shape[0] == len(lp_vars):
            hint = warm_start.values.copy()
            for var in model.variables:
                if var.var_type is not VarType.CONTINUOUS:
                    hint[var.index] = round(hint[var.index])
            # Only a verified-feasible assignment is offered as a MIP
            # start; a poisoned hint is dropped on the floor.
            if model.is_feasible(hint):
                for var, value in zip(lp_vars, hint):
                    var.setInitialValue(float(value))
                use_mip_start = True

        time_limit = self.time_limit
        if deadline is not None:
            remaining = max(deadline_remaining(deadline), 0.001)
            time_limit = remaining if time_limit is None else min(time_limit, remaining)

        cmd = _pulp.PULP_CBC_CMD(
            msg=False,
            timeLimit=time_limit,
            gapRel=self.gap_rel or None,
            warmStart=use_mip_start,
        )
        prob.solve(cmd)

        status = _STATUS_MAP.get(prob.status, SolveStatus.ERROR)
        values = np.array(
            [v.varValue if v.varValue is not None else 0.0 for v in lp_vars],
            dtype=float,
        )
        if status is not SolveStatus.OPTIMAL:
            return Solution(status, message=_pulp.LpStatus[prob.status])
        for var in model.variables:
            if var.var_type is not VarType.CONTINUOUS:
                values[var.index] = round(values[var.index])
        objective = model.objective_value(values)
        return Solution(status, objective, values, message="cbc optimal")
