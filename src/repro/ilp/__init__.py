"""Integer linear programming substrate.

The paper reconstructs the core map by solving an ILP (§II-C). This package
provides everything needed for that, built from scratch:

* :mod:`repro.ilp.model` — a small modelling layer (variables, linear
  expressions, constraints, objective) with operator overloading.
* :mod:`repro.ilp.simplex` — a dense two-phase primal simplex LP solver.
* :mod:`repro.ilp.backend` — the :class:`~repro.ilp.backend.SolverBackend`
  protocol (``solve(model, *, warm_start=None, deadline=None)`` plus the
  ``supports_warm_start``/``is_exact``/``is_anytime`` capability flags) and
  the priority-ordered backend registry every solver below registers with.
* :mod:`repro.ilp.branch_bound` — ``"bnb"``: a best-first branch-and-bound
  MILP solver on top of the simplex (or any LP relaxation solver); exact,
  anytime, warm-startable.
* :mod:`repro.ilp.scipy_backend` — ``"highs"``: an adapter to
  ``scipy.optimize.milp`` (HiGHS), the default for paper-scale instances.
* :mod:`repro.ilp.pulp_backend` — ``"cbc"``: COIN-OR CBC via PuLP, an
  *optional* dependency (``pip install .[cbc]``); absent-solver hosts see
  it excluded from :func:`~repro.ilp.backend.available_backends`.
* :mod:`repro.ilp.portfolio` — ``"portfolio"``: races the exact backends
  with first-to-definitive cancellation and priority-deterministic
  verdicts.
* :mod:`repro.ilp.warmstart` — the pattern cache whose hits/rejections
  feed :class:`~repro.ilp.backend.WarmStart` hints through the protocol.

Construct backends through the registry (:func:`create_backend`,
:func:`resolve_solver`) rather than instantiating solver classes at call
sites — the registry is what keeps string solver specs picklable across
the survey worker pool and what lets the portfolio discover its lanes.
All backends are cross-validated on the same generated instances by
``tests/ilp/test_differential.py``.
"""

from repro.ilp.model import LinearExpr, Model, Variable, VarType, lin_sum
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.simplex import SimplexSolver, LpResult, LpStatus
from repro.ilp.backend import (
    DEFAULT_BACKEND,
    BackendSpec,
    BackendUnavailable,
    SolverBackend,
    WarmStart,
    available_backends,
    backend_available,
    backend_names,
    backend_spec,
    create_backend,
    deadline_remaining,
    default_solver,
    definitive,
    register_backend,
    resolve_solver,
    unregister_backend,
    _register_builtin_backends,
)
from repro.ilp.branch_bound import BranchBoundSolver
from repro.ilp.scipy_backend import ScipyMilpSolver
from repro.ilp.pulp_backend import PulpCbcSolver, pulp_available
from repro.ilp.portfolio import PortfolioSolver

_register_builtin_backends()

# The single authoritative solver-layer surface: everything external code
# (core/reconstruct, placement, the CLI, tests) should import lives here.
__all__ = [
    # modelling layer
    "LinearExpr",
    "Model",
    "Variable",
    "VarType",
    "lin_sum",
    "Solution",
    "SolveStatus",
    # LP substrate
    "SimplexSolver",
    "LpResult",
    "LpStatus",
    # backend protocol + registry
    "SolverBackend",
    "WarmStart",
    "BackendSpec",
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_available",
    "backend_names",
    "backend_spec",
    "create_backend",
    "deadline_remaining",
    "default_solver",
    "definitive",
    "register_backend",
    "resolve_solver",
    "unregister_backend",
    # concrete backends
    "BranchBoundSolver",
    "ScipyMilpSolver",
    "PulpCbcSolver",
    "PortfolioSolver",
    "pulp_available",
]
