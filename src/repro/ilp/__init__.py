"""Integer linear programming substrate.

The paper reconstructs the core map by solving an ILP (§II-C). This package
provides everything needed for that, built from scratch:

* :mod:`repro.ilp.model` — a small modelling layer (variables, linear
  expressions, constraints, objective) with operator overloading.
* :mod:`repro.ilp.simplex` — a dense two-phase primal simplex LP solver.
* :mod:`repro.ilp.branch_bound` — a best-first branch-and-bound MILP solver
  on top of the simplex (or any LP relaxation solver).
* :mod:`repro.ilp.scipy_backend` — an adapter to ``scipy.optimize.milp``
  (HiGHS), used for the paper-scale instances.

Both MILP backends implement ``solve(model) -> Solution`` and can be swapped
freely; the reconstruction code defaults to HiGHS but every backend is
validated against the other in the test suite.
"""

from repro.ilp.model import LinearExpr, Model, Variable, VarType
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.simplex import SimplexSolver, LpResult, LpStatus
from repro.ilp.branch_bound import BranchBoundSolver
from repro.ilp.scipy_backend import ScipyMilpSolver

__all__ = [
    "LinearExpr",
    "Model",
    "Variable",
    "VarType",
    "Solution",
    "SolveStatus",
    "SimplexSolver",
    "LpResult",
    "LpStatus",
    "BranchBoundSolver",
    "ScipyMilpSolver",
]


def default_solver() -> "ScipyMilpSolver":
    """Return the default MILP backend used by the reconstruction pipeline."""
    return ScipyMilpSolver()
