"""Common result types shared by all MILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Outcome of a MILP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"
    ERROR = "error"

    @property
    def ok(self) -> bool:
        return self is SolveStatus.OPTIMAL


@dataclass
class Solution:
    """Result of solving a :class:`repro.ilp.model.Model`."""

    status: SolveStatus
    objective: float = float("nan")
    values: np.ndarray = field(default_factory=lambda: np.zeros(0))
    nodes_explored: int = 0
    message: str = ""

    def value_of(self, var) -> float:
        """Value assigned to a :class:`~repro.ilp.model.Variable`."""
        if not self.status.ok:
            raise RuntimeError(f"no solution available (status={self.status.value})")
        return float(self.values[var.index])

    def int_value_of(self, var) -> int:
        """Integer value assigned to an integral variable (rounded)."""
        return int(round(self.value_of(var)))
