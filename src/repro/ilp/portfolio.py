"""Race several MILP backends, first-to-definitive wins — deterministically.

A :class:`PortfolioSolver` runs every registered (and available) exact
backend on the same model concurrently and returns as soon as the race is
decided. The subtlety is reproducibility: two optimal backends may return
*different* optimal assignments (the reconstruction objective frequently
has symmetric optima), so "whoever finishes first" would make survey
records depend on scheduler timing. The portfolio therefore separates the
*race* from the *verdict*:

* lanes run concurrently (threads or forked processes), lane ``k``
  starting after ``k * stagger_seconds`` (the hedged-request pattern — on
  easy instances the priority lane finishes before any backup even wakes);
* the verdict is always the result of the **highest-priority lane that
  produced a definitive answer** (``OPTIMAL``, or ``INFEASIBLE`` /
  ``UNBOUNDED`` from an exact backend). The wait loop walks lanes in
  priority order: an unfinished higher-priority lane is awaited, a
  finished-but-indefinite one (node limit, error, crash) is passed over;
* the moment a verdict exists, every other lane is cancelled —
  cooperatively (a ``cancel`` event the branch-and-bound polls per node)
  in thread mode, with ``terminate()``/``kill()`` in process mode.

Consequence: the portfolio's output is byte-identical to what the winning
backend would have produced solo, no matter how the race unfolded — a
stalled or slow *lower*-priority lane can never delay or change the
answer. A wedged *highest*-priority lane is bounded only by ``deadline``;
that trade-off buys determinism.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.ilp.backend import (
    WarmStart,
    available_backends,
    backend_spec,
    create_backend,
    deadline_remaining,
    definitive,
)
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus

#: Grace period after the deadline before the wait loop gives up on a lane.
_DEADLINE_GRACE = 0.25


def default_lane_names() -> list[str]:
    """Available exact backends in priority order (the default lanes)."""
    names = []
    for name in available_backends():
        if name == "portfolio":
            continue
        backend_cls = backend_spec(name).factory
        if getattr(backend_cls, "is_exact", False):
            names.append(name)
    return names


@dataclass
class _Lane:
    """One racing backend: its identity, its thread/process, its outcome."""

    index: int
    name: str
    backend: object | None = None
    solution: Solution | None = None
    error: BaseException | None = None
    cancel: threading.Event = field(default_factory=threading.Event)
    done: threading.Event = field(default_factory=threading.Event)
    thread: threading.Thread | None = None
    process: object | None = None
    conn: object | None = None
    started: bool = False
    cancelled: bool = False


class PortfolioSolver:
    """Implements :class:`repro.ilp.backend.SolverBackend` by racing others.

    Parameters
    ----------
    backends:
        Lane names in priority order. Defaults to every available exact
        backend (``highs``, ``bnb``, ``cbc`` when installed). Backend
        *instances* are also accepted (tests inject stalling lanes).
    mode:
        ``"thread"`` (default; zero fork cost, cooperative cancellation)
        or ``"process"`` (fork per lane, hard cancellation via SIGTERM).
    stagger_seconds:
        Delay between lane starts. Lane 0 starts immediately.
    deadline_seconds:
        Per-solve budget applied when the caller passes no ``deadline``.
    """

    name = "portfolio"
    supports_warm_start = True
    is_exact = True
    is_anytime = True

    def __init__(
        self,
        backends: list | None = None,
        mode: str = "thread",
        stagger_seconds: float = 0.05,
        deadline_seconds: float | None = None,
        tracer=None,
    ):
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown portfolio mode {mode!r}")
        self.backends = list(backends) if backends is not None else None
        self.mode = mode
        self.stagger_seconds = stagger_seconds
        self.deadline_seconds = deadline_seconds
        if tracer is None:
            from repro.telemetry.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self._c_races = tracer.counter("solver_portfolio_races_total")
        self._lanes: list[_Lane] = []

    # -- lane construction -------------------------------------------------------
    def _build_lanes(self) -> list[_Lane]:
        specs = self.backends if self.backends is not None else default_lane_names()
        if not specs:
            raise RuntimeError("portfolio has no available backends to race")
        lanes = []
        for i, spec in enumerate(specs):
            if isinstance(spec, str):
                lanes.append(_Lane(index=i, name=spec))
            else:
                lanes.append(_Lane(index=i, name=getattr(spec, "name", f"lane{i}"), backend=spec))
        return lanes

    def active_workers(self) -> int:
        """Live threads/processes from the most recent race (0 = clean)."""
        alive = 0
        for lane in self._lanes:
            if lane.thread is not None and lane.thread.is_alive():
                alive += 1
            if lane.process is not None and lane.process.is_alive():
                alive += 1
        return alive

    # -- thread lanes ------------------------------------------------------------
    def _run_lane_thread(
        self,
        lane: _Lane,
        model: Model,
        warm_start: WarmStart | None,
        deadline: float | None,
        delay: float,
    ) -> None:
        try:
            if delay > 0.0 and lane.cancel.wait(timeout=delay):
                lane.cancelled = True
                return
            lane.started = True
            backend = lane.backend
            if backend is None:
                backend = create_backend(lane.name)
                lane.backend = backend
            hint = warm_start if getattr(backend, "supports_warm_start", False) else None
            kwargs = {"warm_start": hint, "deadline": deadline}
            try:
                lane.solution = backend.solve(model, cancel=lane.cancel, **kwargs)
            except TypeError:
                # Backends without cooperative cancellation still race;
                # they just cannot be interrupted mid-solve in thread mode.
                lane.solution = backend.solve(model, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - lane failure != race failure
            lane.error = exc
        finally:
            lane.done.set()

    # -- process lanes -----------------------------------------------------------
    @staticmethod
    def _lane_worker(conn, name, model, warm_values, warm_source, deadline, delay):
        # Runs in the forked child. Flags/registry state arrive via fork.
        try:
            if delay > 0.0:
                time.sleep(delay)
            backend = create_backend(name)
            hint = None
            if warm_values is not None and getattr(backend, "supports_warm_start", False):
                hint = WarmStart(values=warm_values, source=warm_source)
            sol = backend.solve(model, warm_start=hint, deadline=deadline)
            conn.send(
                (
                    sol.status.value,
                    sol.objective,
                    np.asarray(sol.values, dtype=float),
                    sol.nodes_explored,
                    sol.message,
                )
            )
        except BaseException as exc:  # noqa: BLE001 - report, parent decides
            try:
                conn.send(("error", float("nan"), np.zeros(0), 0, repr(exc)))
            except Exception:  # noqa: BLE001
                pass
        finally:
            conn.close()

    def _start_lanes(
        self,
        lanes: list[_Lane],
        model: Model,
        warm_start: WarmStart | None,
        deadline: float | None,
    ) -> None:
        for lane in lanes:
            delay = lane.index * self.stagger_seconds
            if self.mode == "thread" or lane.backend is not None:
                # Injected backend instances always race in-thread — they
                # may hold unpicklable state (tracers, stall hooks).
                lane.thread = threading.Thread(
                    target=self._run_lane_thread,
                    args=(lane, model, warm_start, deadline, delay),
                    name=f"portfolio-{lane.name}",
                    daemon=True,
                )
                lane.thread.start()
            else:
                ctx = mp.get_context("fork")
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                warm_values = warm_start.values if warm_start is not None else None
                warm_source = warm_start.source if warm_start is not None else ""
                lane.process = ctx.Process(
                    target=self._lane_worker,
                    args=(
                        child_conn,
                        lane.name,
                        model,
                        warm_values,
                        warm_source,
                        deadline,
                        delay,
                    ),
                    name=f"portfolio-{lane.name}",
                    daemon=True,
                )
                lane.conn = parent_conn
                lane.process.start()
                child_conn.close()

    def _collect_process_result(self, lane: _Lane, timeout: float) -> bool:
        """Wait up to ``timeout`` for a process lane; True once settled."""
        proc, conn = lane.process, lane.conn
        end = time.monotonic() + max(timeout, 0.0)
        while True:
            remaining = end - time.monotonic()
            if conn.poll(max(min(remaining, 0.05), 0.0)):
                try:
                    status_value, objective, values, nodes, message = conn.recv()
                except (EOFError, OSError):
                    lane.error = RuntimeError(f"lane {lane.name} died without a result")
                    lane.done.set()
                    return True
                if status_value == "error":
                    lane.error = RuntimeError(message)
                else:
                    lane.solution = Solution(
                        SolveStatus(status_value), objective, values, nodes, message
                    )
                lane.done.set()
                return True
            if not proc.is_alive() and not conn.poll():
                lane.error = RuntimeError(f"lane {lane.name} died without a result")
                lane.done.set()
                return True
            if remaining <= 0.0:
                return lane.done.is_set()

    def _settle_lane(self, lane: _Lane, timeout: float) -> bool:
        """Block up to ``timeout`` until the lane has an outcome."""
        if lane.done.is_set():
            return True
        if lane.process is not None:
            return self._collect_process_result(lane, timeout)
        return lane.done.wait(timeout=timeout)

    def _cancel_lane(self, lane: _Lane, counters: bool = True) -> None:
        if lane.done.is_set() and lane.process is None:
            if counters and lane.cancelled:
                # Lane was told to stand down before its stagger delay
                # elapsed — it never started, which still counts as a
                # cancellation for the telemetry.
                self.tracer.counter(
                    "solver_portfolio_cancelled_total", backend=lane.name
                ).inc()
            return
        lane.cancel.set()
        if lane.thread is not None:
            # Cooperative lanes notice the event quickly (per-node poll or
            # the stagger wait); join them so active_workers() settles to
            # zero. A non-cooperative stalled lane stays a daemon thread —
            # only process mode can cancel those hard.
            if lane.done.wait(timeout=0.25):
                lane.thread.join(timeout=1.0)
        if lane.process is not None and lane.process.is_alive():
            lane.process.terminate()
            lane.process.join(timeout=2.0)
            if lane.process.is_alive():  # pragma: no cover - SIGTERM ignored
                lane.process.kill()
                lane.process.join(timeout=2.0)
        if lane.conn is not None:
            try:
                lane.conn.close()
            except OSError:  # pragma: no cover
                pass
        if not lane.done.is_set():
            lane.cancelled = True
        if counters and lane.cancelled:
            self.tracer.counter(
                "solver_portfolio_cancelled_total", backend=lane.name
            ).inc()

    # -- the race ----------------------------------------------------------------
    def solve(
        self,
        model: Model,
        *,
        warm_start: WarmStart | None = None,
        deadline: float | None = None,
    ) -> Solution:
        if deadline is None and self.deadline_seconds is not None:
            deadline = time.monotonic() + self.deadline_seconds
        lanes = self._build_lanes()
        self._lanes = lanes
        self._c_races.inc()

        self._start_lanes(lanes, model, warm_start, deadline)
        try:
            winner, verdict = self._await_verdict(lanes, deadline)
        finally:
            for lane in lanes:
                self._cancel_lane(lane)
        if winner is not None:
            self.tracer.counter(
                "solver_portfolio_wins_total", backend=winner.name
            ).inc()
            return verdict
        # No lane produced a definitive verdict (deadline, node limits,
        # crashes). Fall back to the best indefinite answer in priority
        # order — an anytime incumbent beats a bare failure.
        for lane in lanes:
            if lane.solution is not None and lane.solution.values.size:
                return lane.solution
        for lane in lanes:
            if lane.solution is not None:
                return lane.solution
        failures = "; ".join(
            f"{lane.name}: {lane.error!r}" for lane in lanes if lane.error is not None
        )
        return Solution(SolveStatus.ERROR, message=f"all lanes failed ({failures})")

    def _await_verdict(
        self, lanes: list[_Lane], deadline: float | None
    ) -> tuple[_Lane | None, Solution | None]:
        """Walk lanes in priority order until one yields a definitive result."""
        for lane in lanes:
            while True:
                remaining = deadline_remaining(deadline)
                if remaining <= -_DEADLINE_GRACE:
                    if not lane.done.is_set():
                        break  # out of budget: pass over this lane
                timeout = min(max(remaining + _DEADLINE_GRACE, 0.0), 0.1)
                if self._settle_lane(lane, timeout=max(timeout, 0.01)):
                    break
            if lane.solution is not None and definitive(
                lane.solution, lane.backend or backend_spec(lane.name).factory
            ):
                return lane, lane.solution
        return None, None
