"""ILP warm-start pattern cache.

Fleet surveys solve the same layout ILP over and over: dies of one SKU share
a handful of Table-II disable patterns, and two instances with the same
pattern produce *identical* observation sets (the pipeline is deterministic
given the layout). The cache keys solved layouts by an exact observation
signature; a later slot with the same signature skips model building and the
HiGHS solve entirely.

Safety: signature equality implies the cached model is byte-for-byte the
model the cold path would build, and the solver is deterministic — so a hit
returns exactly the cold result. The consumer must still **verify** the
cached positions against its freshly measured observations before accepting
(:func:`repro.core.reconstruct.reconstruct_map` replays every observation
against the candidate layout); a poisoned or stale entry fails that check
and falls back to a cold solve. Entries are only ever *added* for consistent
results, and the cache is cleared by :func:`repro.perf.clear_caches`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def observation_signature(
    observations,
    os_to_cha: dict[int, int],
    llc_only_chas,
    grid_shape: tuple[int, int],
) -> tuple:
    """Exact, hashable identity of a reconstruction problem.

    Two calls with equal signatures would build identical ILP models (same
    observations in the same order, same endpoint set, same grid), so their
    cold solves are interchangeable. Observation *order* is part of the
    signature: it affects constraint order and hence solver traversal.
    """
    return (
        grid_shape,
        tuple(sorted(os_to_cha.items())),
        tuple(sorted(llc_only_chas)),
        tuple(
            (
                obs.source_cha,
                obs.sink_cha,
                tuple(sorted(obs.up)),
                tuple(sorted(obs.down)),
                tuple(sorted(obs.horizontal)),
            )
            for obs in observations
        ),
    )


@dataclass
class PatternEntry:
    """One solved layout, keyed by its observation signature."""

    positions: dict[int, Any]  # CHA → TileCoord
    unlocated: frozenset[int]
    refinement_cuts: int
    consistent: bool
    solution: Any  # repro.ilp.solution.Solution
    layout: Any  # repro.core.ilp_formulation.IlpLayout


@dataclass
class PatternCache:
    """Bounded FIFO map from observation signature to solved layout."""

    max_entries: int = 256
    hits: int = 0
    misses: int = 0
    rejected: int = 0
    _entries: dict[tuple, PatternEntry] = field(default_factory=dict)

    def get(self, signature: tuple) -> PatternEntry | None:
        entry = self._entries.get(signature)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, signature: tuple, entry: PatternEntry) -> None:
        if signature in self._entries:
            return
        if len(self._entries) >= self.max_entries:
            # FIFO eviction: drop the oldest pattern. Survey fleets cycle
            # through far fewer unique patterns than this bound.
            self._entries.pop(next(iter(self._entries)))
        self._entries[signature] = entry

    def reject(self) -> None:
        """Record a hit whose candidate failed fresh-observation verification."""
        self.rejected += 1

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.misses = self.rejected = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global pattern cache (workers each hold their own copy).
PATTERN_CACHE = PatternCache()
