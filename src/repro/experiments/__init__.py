"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...)`` returning a result object with a
``render()`` method that prints the same rows/series the paper reports.
``python -m repro.experiments <id>`` runs one from the command line; the
``benchmarks/`` suite wraps the same functions with pytest-benchmark.

Environment knobs (all optional):

* ``REPRO_SEED`` — root seed for fleets/payloads (default 2022);
* ``REPRO_FLEET_SIZE`` — instances per SKU for Table I (default 100, as in
  the paper);
* ``REPRO_MAP_FLEET_SIZE`` — instances per SKU run through the *full*
  mapping pipeline for Table II / Fig 4 (default 40; set 100 to match the
  paper's scale at ~4× the runtime);
* ``REPRO_BITS`` — payload bits per covert-channel measurement point
  (default 1000; the paper uses 10000).
"""

from repro.experiments import table1, table2, fig4, fig5, fig6, fig7, fig8, verify_map

__all__ = ["table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "verify_map"]
