"""§V-D: thermal verification of the recovered core map.

All-pairs short transmissions; for each receiver with a vertical map
neighbour, the lowest-BER sender should be a map neighbour (the paper's
cross-check that the recovered map reflects true physical locations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import map_cpu
from repro.core.verify import VerificationReport, thermal_verify_map
from repro.experiments import common
from repro.platform.skus import SKU_CATALOG
from repro.util.rng import derive_rng


@dataclass
class VerifyMapResult:
    report: VerificationReport

    def render(self) -> str:
        r = self.report
        return "\n".join(
            [
                "§V-D — thermal verification of the recovered core map",
                f"receivers checked: {len(r.confirmed_receivers) + len(r.exceptions)}",
                f"confirmed (best sender is a map neighbour): {len(r.confirmed_receivers)}",
                f"exceptions: {len(r.exceptions)} {r.exceptions}",
                f"skipped (no vertical neighbour in map): {len(r.skipped)} {r.skipped}",
                f"confirmation rate: {r.confirmation_rate * 100:.0f}%",
            ]
        )


def run(
    seed: int | None = None,
    n_bits: int = 48,
    receivers: list[int] | None = None,
) -> VerifyMapResult:
    seed = seed if seed is not None else common.root_seed()
    machine = common.machine_for(SKU_CATALOG["8259CL"], 0, seed, with_thermal=True)
    core_map = map_cpu(machine).core_map
    report = thermal_verify_map(
        machine,
        core_map,
        derive_rng(seed, "verify-payload"),
        n_bits=n_bits,
        receivers=receivers,
    )
    return VerifyMapResult(report=report)
