"""Fig. 4: the three most frequent 8259CL core-location maps.

Maps a fleet of 8259CL instances with the full pipeline and renders the
three most frequent reconstructed maps as tile grids labelled
``OS core ID / CHA ID`` — the same presentation as the paper's figure.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.coremap import CoreMap
from repro.experiments import common
from repro.platform.skus import SKU_CATALOG


@dataclass
class Fig4Result:
    fleet_size: int
    #: (count, example reconstructed map) for the top patterns.
    top_patterns: list[tuple[int, CoreMap]]
    #: Fraction of reconstructions matching hidden ground truth.
    accuracy: float

    def render(self) -> str:
        blocks = [
            f"Fig. 4 — most frequent 8259CL core-location patterns "
            f"({self.fleet_size} instances; cells are 'OS core/CHA'; "
            f"reconstruction == truth for {self.accuracy * 100:.0f}%)"
        ]
        for rank, (count, core_map) in enumerate(self.top_patterns, start=1):
            blocks.append(f"Pattern #{rank} — {count} instances")
            blocks.append(core_map.render())
        return "\n\n".join(blocks)


def run(
    fleet_size: int | None = None, seed: int | None = None, top_k: int = 3
) -> Fig4Result:
    n = fleet_size if fleet_size is not None else common.map_fleet_size()
    seed = seed if seed is not None else common.root_seed()
    mapped = common.map_whole_fleet(SKU_CATALOG["8259CL"], n, seed)

    counter: Counter = Counter(m.recovered_map.canonical_key() for m in mapped)
    example: dict[tuple, CoreMap] = {}
    for m in mapped:
        example.setdefault(m.recovered_map.canonical_key(), m.recovered_map)

    top = [
        (count, example[key]) for key, count in counter.most_common(top_k)
    ]
    accuracy = sum(m.correct for m in mapped) / len(mapped)
    return Fig4Result(fleet_size=n, top_patterns=top, accuracy=accuracy)
