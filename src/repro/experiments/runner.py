"""Command-line entry point: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import fig4, fig5, fig6, fig7, fig8, table1, table2, verify_map

EXPERIMENTS = {
    "table1": (table1, "OS core ID <-> CHA ID mappings per SKU"),
    "table2": (table2, "core-location pattern statistics"),
    "fig4": (fig4, "three most frequent 8259CL core maps"),
    "fig5": (fig5, "Ice Lake Xeon 6354 mapping"),
    "fig6": (fig6, "thermal covert-channel traces at 1/2/3 hops"),
    "fig7": (fig7, "BER vs rate for hop counts and orientations"),
    "fig8": (fig8, "multi-sender and multi-channel covert channels"),
    "verify": (verify_map, "thermal verification of the recovered map (SV-D)"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=list(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--seed", type=int, default=None, help="override REPRO_SEED")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        module, _ = EXPERIMENTS[name]
        started = time.perf_counter()
        result = module.run(seed=args.seed) if args.seed is not None else module.run()
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
