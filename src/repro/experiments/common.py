"""Shared experiment plumbing: env knobs, fleet mapping, pair finding."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.cha_mapping import ChaMappingResult, build_eviction_sets, map_os_to_cha
from repro.core.coremap import CoreMap
from repro.core.pipeline import MappingResult, map_cpu
from repro.mesh.hops import HopMatrix
from repro.platform.fleet import instance_seed
from repro.platform.instance import CpuInstance
from repro.platform.skus import SkuSpec
from repro.sim.factory import build_machine
from repro.sim.machine import SimulatedMachine
from repro.uncore.session import UncorePmonSession

DEFAULT_SEED = 2022


def env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"{name} must be positive")
    return value


def root_seed() -> int:
    return env_int("REPRO_SEED", DEFAULT_SEED)


def fleet_size() -> int:
    """Instances per SKU for the (cheap) Table-I survey."""
    return env_int("REPRO_FLEET_SIZE", 100)


def map_fleet_size() -> int:
    """Instances per SKU run through the full pipeline (Table II / Fig 4)."""
    return env_int("REPRO_MAP_FLEET_SIZE", 40)


def payload_bits() -> int:
    """Bits per covert-channel measurement point (paper: 10000)."""
    return env_int("REPRO_BITS", 1000)


@dataclass
class MappedInstance:
    """One fleet member: hidden truth plus what the tool recovered."""

    instance: CpuInstance
    machine: SimulatedMachine
    result: MappingResult

    @property
    def recovered_map(self) -> CoreMap:
        return self.result.core_map

    @property
    def truth_map(self) -> CoreMap:
        return CoreMap.from_instance(self.instance)

    @property
    def correct(self) -> bool:
        """Reconstruction matches truth over every *locatable* CHA.

        CHAs no probe route ever touches (e.g. an all-LLC-only column)
        cannot be located by the method — they are excluded from the
        comparison, and ``n_unlocated`` reports how many there were.
        """
        located = frozenset(self.recovered_map.cha_positions)
        return self.recovered_map.equivalent(self.truth_map.restricted_to(located))

    @property
    def n_unlocated(self) -> int:
        return len(self.result.reconstruction.unlocated_chas)


def machine_for(sku: SkuSpec, index: int, seed: int, with_thermal: bool = False) -> SimulatedMachine:
    instance = CpuInstance.generate(sku, instance_seed(seed, sku, index))
    return build_machine(instance, seed=seed + index, with_thermal=with_thermal)


def run_step1(machine: SimulatedMachine) -> ChaMappingResult:
    """Only the §II-A step (what Table I reports)."""
    session = UncorePmonSession(machine.msr, machine.n_chas)
    sets = build_eviction_sets(machine, session)
    return map_os_to_cha(machine, session, sets)


def map_whole_fleet(sku: SkuSpec, n_instances: int, seed: int) -> list[MappedInstance]:
    """Run the full pipeline over a fleet of ``sku`` instances."""
    out: list[MappedInstance] = []
    for index in range(n_instances):
        machine = machine_for(sku, index, seed)
        result = map_cpu(machine)
        out.append(MappedInstance(machine.instance, machine, result))
    return out


def find_hop_pair(core_map: CoreMap, d_row: int, d_col: int) -> tuple[int, int] | None:
    """A (sender, receiver) core pair separated by exactly (d_row, d_col)."""
    return HopMatrix.from_core_map(core_map).pair_at_offset(d_row, d_col)
