"""Fig. 5: core-location mapping of third-generation (Ice Lake) Xeon 6354.

The paper maps 10 OCI instances, finds 6 unique patterns, and shows one
example map on the larger Ice Lake grid, noting the CHA-ID location rule
differs from Skylake/Cascade Lake. This experiment does the same with the
full pipeline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.coremap import CoreMap
from repro.experiments import common
from repro.platform.skus import SKU_CATALOG

#: Fig. 5's OS→CHA mapping: ICX enumerates active-core CHAs in ascending
#: order (read off the figure's 'OS/CHA' tile labels).
PAPER_FIG5_OS_TO_CHA = (1, 3, 5, 6, 7, 8, 9, 10, 11, 13, 14, 16, 17, 19, 20, 22, 23, 25)

#: Instances the paper mapped, and the unique patterns it found.
PAPER_N_INSTANCES = 10
PAPER_N_UNIQUE = 6


@dataclass
class Fig5Result:
    fleet_size: int
    n_unique_patterns: int
    example_map: CoreMap
    example_os_to_cha: tuple[int, ...]
    accuracy: float

    def matches_paper_mapping(self) -> bool:
        return self.example_os_to_cha == PAPER_FIG5_OS_TO_CHA

    def render(self) -> str:
        lines = [
            f"Fig. 5 — Xeon 6354 (Ice Lake) core mapping "
            f"({self.fleet_size} instances; paper: {PAPER_N_INSTANCES})",
            f"unique location patterns: {self.n_unique_patterns} "
            f"(paper: {PAPER_N_UNIQUE})",
            f"OS->CHA ascending rule matches Fig. 5: {self.matches_paper_mapping()}",
            f"reconstruction == truth for {self.accuracy * 100:.0f}% of instances",
            "example reconstructed map ('OS core/CHA'; LLC = LLC-only tile):",
            self.example_map.render(),
        ]
        return "\n".join(lines)


def run(fleet_size: int = PAPER_N_INSTANCES, seed: int | None = None) -> Fig5Result:
    seed = seed if seed is not None else common.root_seed()
    mapped = common.map_whole_fleet(SKU_CATALOG["6354"], fleet_size, seed)
    counter: Counter = Counter(m.recovered_map.canonical_key() for m in mapped)
    first = mapped[0]
    os_to_cha = tuple(
        first.result.cha_mapping.os_to_cha[os]
        for os in sorted(first.result.cha_mapping.os_to_cha)
    )
    return Fig5Result(
        fleet_size=fleet_size,
        n_unique_patterns=len(counter),
        example_map=first.recovered_map,
        example_os_to_cha=os_to_cha,
        accuracy=sum(m.correct for m in mapped) / len(mapped),
    )
