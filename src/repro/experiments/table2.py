"""Table II: observed core-location pattern statistics.

Runs the *full* pipeline (steps 1–3) over a fleet of each SKU, counts the
distinct reconstructed location patterns (canonical up to the method's
inherent mirror/compaction ambiguity), and reports top-4 frequencies and
the number of unique patterns — Table II's content. It also reports the
fraction of instances whose reconstruction matches the hidden ground
truth, which the paper could only spot-check thermally (§V-D).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.experiments import common
from repro.platform.skus import SKU_CATALOG
from repro.util.tables import format_table

#: Paper's Table II: SKU → (top-4 counts, total unique patterns) at n=100.
PAPER_TABLE2: dict[str, tuple[tuple[int, int, int, int], int]] = {
    "8124M": ((53, 18, 5, 5), 14),
    "8175M": ((52, 7, 7, 6), 26),
    "8259CL": ((19, 5, 4, 4), 53),
}

_SKUS = ("8124M", "8175M", "8259CL")


@dataclass
class Table2Result:
    fleet_size: int
    #: SKU → Counter over canonical reconstructed pattern keys.
    patterns: dict[str, Counter]
    #: SKU → fraction of instances where reconstruction == ground truth.
    accuracy: dict[str, float]

    def top4(self, sku_name: str) -> list[int]:
        counts = sorted(self.patterns[sku_name].values(), reverse=True)
        return (counts + [0, 0, 0, 0])[:4]

    def n_unique(self, sku_name: str) -> int:
        return len(self.patterns[sku_name])

    def render(self) -> str:
        header = (
            f"Table II — core-location pattern statistics "
            f"({self.fleet_size} instances per SKU; paper: 100)"
        )
        rows = []
        for sku_name in _SKUS:
            top4 = self.top4(sku_name)
            paper_top4, paper_unique = PAPER_TABLE2[sku_name]
            rows.append(
                [
                    sku_name,
                    " ".join(map(str, top4)),
                    " ".join(map(str, paper_top4)),
                    self.n_unique(sku_name),
                    paper_unique,
                    f"{self.accuracy[sku_name] * 100:.0f}%",
                ]
            )
        return header + "\n" + format_table(
            [
                "CPU model",
                "top-4 counts",
                "paper top-4 (n=100)",
                "unique",
                "paper unique",
                "recon == truth",
            ],
            rows,
        )


def run(fleet_size: int | None = None, seed: int | None = None) -> Table2Result:
    n = fleet_size if fleet_size is not None else common.map_fleet_size()
    seed = seed if seed is not None else common.root_seed()
    patterns: dict[str, Counter] = {}
    accuracy: dict[str, float] = {}
    for sku_name in _SKUS:
        sku = SKU_CATALOG[sku_name]
        mapped = common.map_whole_fleet(sku, n, seed)
        counter: Counter = Counter(
            m.recovered_map.canonical_key() for m in mapped
        )
        patterns[sku_name] = counter
        accuracy[sku_name] = sum(m.correct for m in mapped) / len(mapped)
    return Table2Result(fleet_size=n, patterns=patterns, accuracy=accuracy)
