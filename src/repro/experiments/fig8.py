"""Fig. 8: strengthened thermal covert channels.

(a) multiple synchronized senders surrounding one receiver lower the BER
    (paper: 4 senders take 4 bps from ~8 % to ~2 %);
(b) multiple parallel sender-receiver pairs raise aggregate throughput
    (paper: ×8 reaches 15 bps under 1 % BER; 40 bps at higher error).

Placement comes from the recovered core map in both cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import map_cpu
from repro.covert.metrics import MeasurementPoint
from repro.covert.multi import (
    best_surrounded_receiver,
    multi_channel_measurement,
    multi_sender_measurement,
)
from repro.experiments import common
from repro.platform.skus import SKU_CATALOG
from repro.util.rng import derive_rng
from repro.util.tables import format_table

SENDER_COUNTS = (1, 2, 4, 8)
SENDER_RATES = (2.0, 4.0, 8.0, 12.0)
CHANNEL_COUNTS = (1, 2, 4, 8)
CHANNEL_RATES = (2.0, 3.0, 4.0, 5.0)
#: The paper's headline: ≥15 bps aggregate at <1 % BER.
PAPER_AGGREGATE_TARGET_BPS = 15.0
PAPER_BER_TARGET = 0.01


@dataclass
class Fig8Result:
    n_bits: int
    #: (n_senders, rate) → point.
    multi_sender: dict[tuple[int, float], MeasurementPoint]
    #: (n_channels, per-channel rate) → point (aggregate_rate set).
    multi_channel: dict[tuple[int, float], MeasurementPoint]

    def best_aggregate_under(self, ber_limit: float = PAPER_BER_TARGET) -> float:
        rates = [
            p.aggregate_rate
            for p in self.multi_channel.values()
            if p.ber < ber_limit and p.aggregate_rate is not None
        ]
        return max(rates, default=0.0)

    def render(self) -> str:
        sender_rows = []
        for n in SENDER_COUNTS:
            row = [f"{n} sender(s)"]
            for rate in SENDER_RATES:
                point = self.multi_sender.get((n, rate))
                row.append("n/a" if point is None else f"{point.ber * 100:.1f}%")
            sender_rows.append(row)
        channel_rows = []
        for n in CHANNEL_COUNTS:
            for rate in CHANNEL_RATES:
                point = self.multi_channel.get((n, rate))
                if point is None:
                    continue
                channel_rows.append(
                    [
                        f"x{n}",
                        f"{rate:g}",
                        f"{point.aggregate_rate:g}",
                        f"{point.ber * 100:.2f}%",
                    ]
                )
        headline = self.best_aggregate_under()
        return "\n\n".join(
            [
                f"Fig. 8 — strengthened channels ({self.n_bits} bits per point)",
                format_table(
                    ["senders"] + [f"{r:g} bps" for r in SENDER_RATES],
                    sender_rows,
                    title="(a) multiple synchronized senders (BER)",
                ),
                format_table(
                    ["channels", "per-ch bps", "aggregate bps", "BER"],
                    channel_rows,
                    title="(b) multiple parallel channels",
                ),
                f"best aggregate under {PAPER_BER_TARGET * 100:.0f}% BER: "
                f"{headline:g} bps (paper: {PAPER_AGGREGATE_TARGET_BPS:g} bps)",
            ]
        )


def run(seed: int | None = None, n_bits: int | None = None) -> Fig8Result:
    seed = seed if seed is not None else common.root_seed()
    n_bits = n_bits if n_bits is not None else common.payload_bits()
    sku = SKU_CATALOG["8259CL"]
    core_map = map_cpu(common.machine_for(sku, 0, seed, with_thermal=True)).core_map
    rng = derive_rng(seed, "fig8-payload")

    multi_sender: dict[tuple[int, float], MeasurementPoint] = {}
    receiver = best_surrounded_receiver(core_map)
    for n_senders in SENDER_COUNTS:
        for rate in SENDER_RATES:
            machine = common.machine_for(sku, 0, seed, with_thermal=True)
            multi_sender[(n_senders, rate)] = multi_sender_measurement(
                machine, core_map, n_senders, rate, n_bits, rng, receiver_os=receiver
            )

    multi_channel: dict[tuple[int, float], MeasurementPoint] = {}
    for n_channels in CHANNEL_COUNTS:
        for rate in CHANNEL_RATES:
            machine = common.machine_for(sku, 0, seed, with_thermal=True)
            try:
                multi_channel[(n_channels, rate)] = multi_channel_measurement(
                    machine, core_map, n_channels, rate, n_bits, rng
                )
            except ValueError:
                continue  # map offers fewer disjoint pairs
    return Fig8Result(n_bits=n_bits, multi_sender=multi_sender, multi_channel=multi_channel)
