"""Fig. 7: bit error rate vs transfer rate for sender-receiver hop counts.

(a) horizontally separated pairs, (b) vertically separated pairs, each at
1/2/3 hops over a rate sweep. Pairs are chosen from the *recovered* core
map (the attack's whole point). Expected shape: 1-hop workable and
vertical strictly better than horizontal (the paper's >20 % horizontal vs
<10 % vertical at 4 bps), ≥2 hops unusable at speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.pipeline import map_cpu
from repro.covert.channel import ChannelConfig, run_transmission
from repro.covert.encoding import random_payload
from repro.covert.metrics import MeasurementPoint
from repro.experiments import common
from repro.mesh.hops import HopMatrix
from repro.platform.skus import SKU_CATALOG

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.coremap import CoreMap
from repro.util.rng import derive_rng
from repro.util.tables import format_table

RATES = (1.0, 2.0, 4.0, 8.0)
HOPS = (1, 2, 3)
ORIENTATIONS = ("horizontal", "vertical")


@dataclass
class Fig7Result:
    n_bits: int
    #: (orientation, hops, rate) → point; missing key = no such pair on map.
    points: dict[tuple[str, int, float], MeasurementPoint]
    #: The recovered map the pairs were drawn from, and its hop analytics —
    #: so downstream consumers (the hop benchmark, placement cross-checks)
    #: reason about the exact same grid the sweep measured.
    core_map: "CoreMap | None" = None
    hop_matrix: HopMatrix | None = None

    def ber(self, orientation: str, hops: int, rate: float) -> float:
        return self.points[(orientation, hops, rate)].ber

    def render(self) -> str:
        blocks = [f"Fig. 7 — BER vs transfer rate ({self.n_bits} bits per point)"]
        for orientation in ORIENTATIONS:
            rows = []
            for hops in HOPS:
                row = [f"{hops}-hop"]
                for rate in RATES:
                    point = self.points.get((orientation, hops, rate))
                    row.append("n/a" if point is None else f"{point.ber * 100:.1f}%")
                rows.append(row)
            blocks.append(
                format_table(
                    ["pair"] + [f"{r:g} bps" for r in RATES],
                    rows,
                    title=f"({'a' if orientation == 'horizontal' else 'b'}) {orientation} pairs",
                )
            )
        return "\n\n".join(blocks)


def run(seed: int | None = None, n_bits: int | None = None) -> Fig7Result:
    seed = seed if seed is not None else common.root_seed()
    n_bits = n_bits if n_bits is not None else common.payload_bits()
    mapped_machine = common.machine_for(SKU_CATALOG["8259CL"], 0, seed, with_thermal=True)
    core_map = map_cpu(mapped_machine).core_map
    hop_matrix = HopMatrix.from_core_map(core_map)

    rng = derive_rng(seed, "fig7-payload")
    points: dict[tuple[str, int, float], MeasurementPoint] = {}
    for orientation in ORIENTATIONS:
        for hops in HOPS:
            d_row, d_col = (0, hops) if orientation == "horizontal" else (hops, 0)
            pair = hop_matrix.pair_at_offset(d_row, d_col)
            if pair is None:
                continue
            sender, receiver = pair
            for rate in RATES:
                machine = common.machine_for(
                    SKU_CATALOG["8259CL"], 0, seed, with_thermal=True
                )
                payload = random_payload(n_bits, rng)
                result = run_transmission(
                    machine, [sender], receiver, payload, ChannelConfig(bit_rate=rate)
                )
                points[(orientation, hops, rate)] = MeasurementPoint(
                    label=f"{orientation} {hops}-hop",
                    bit_rate=rate,
                    n_bits=n_bits,
                    errors=result.errors,
                )
    return Fig7Result(
        n_bits=n_bits, points=points, core_map=core_map, hop_matrix=hop_matrix
    )
