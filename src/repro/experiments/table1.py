"""Table I: OS core ID → CHA ID mapping per CPU model.

Runs the §II-A step over a fleet of each SKU and tabulates the distinct
mappings with their instance counts — the exact content of Table I. The
paper's reference rows are embedded so the report can diff against them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.experiments import common
from repro.platform.skus import SKU_CATALOG
from repro.util.tables import format_table

#: The paper's Table I, keyed by SKU: list of (instances, OS→CHA row).
PAPER_TABLE1: dict[str, list[tuple[int, tuple[int, ...]]]] = {
    "8124M": [
        (100, (0, 4, 8, 12, 16, 2, 6, 10, 14, 1, 5, 9, 13, 17, 3, 7, 11, 15)),
    ],
    "8175M": [
        (
            100,
            (0, 4, 8, 12, 16, 20, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 3, 7, 11, 15, 19, 23),
        ),
    ],
    "8259CL": [
        (62, (0, 4, 8, 12, 16, 20, 24, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 7, 11, 15, 19, 23)),
        (33, (0, 4, 8, 12, 16, 20, 24, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 3, 7, 11, 15, 19, 23)),
        (1, (0, 4, 8, 12, 16, 20, 24, 2, 6, 10, 14, 18, 22, 1, 9, 13, 17, 21, 3, 7, 11, 15, 19, 23)),
        (1, (0, 4, 8, 12, 16, 20, 24, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 25, 7, 11, 15, 19)),
        (1, (0, 4, 8, 12, 20, 24, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 25, 3, 7, 11, 15, 19, 23)),
        (1, (0, 4, 8, 12, 16, 20, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 25, 7, 11, 15, 19, 23)),
        (1, (0, 4, 8, 12, 20, 24, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 25, 7, 11, 15, 19, 23)),
    ],
}

_SKUS = ("8124M", "8175M", "8259CL")


@dataclass
class Table1Result:
    fleet_size: int
    #: SKU → Counter of OS→CHA mapping rows.
    mappings: dict[str, Counter]

    def top_mapping(self, sku_name: str) -> tuple[int, ...]:
        return self.mappings[sku_name].most_common(1)[0][0]

    def matches_paper_top(self, sku_name: str) -> bool:
        """Whether the most frequent measured mapping equals the paper's."""
        return self.top_mapping(sku_name) == PAPER_TABLE1[sku_name][0][1]

    def n_variants(self, sku_name: str) -> int:
        return len(self.mappings[sku_name])

    def render(self) -> str:
        blocks = [
            f"Table I — OS core ID -> CHA ID mappings "
            f"({self.fleet_size} instances per SKU; paper: 100)"
        ]
        for sku_name in _SKUS:
            rows = []
            for mapping, count in self.mappings[sku_name].most_common():
                known = any(mapping == row for _, row in PAPER_TABLE1[sku_name])
                rows.append(
                    [sku_name, count, "yes" if known else "no", " ".join(map(str, mapping))]
                )
            blocks.append(
                format_table(
                    ["CPU model", "# insts", "in paper?", "CHA IDs (OS core order)"],
                    rows,
                )
            )
        return "\n\n".join(blocks)


def run(fleet_size: int | None = None, seed: int | None = None) -> Table1Result:
    """Measure the OS↔CHA mapping of every fleet instance (step 1 only)."""
    n = fleet_size if fleet_size is not None else common.fleet_size()
    seed = seed if seed is not None else common.root_seed()
    mappings: dict[str, Counter] = {}
    for sku_name in _SKUS:
        sku = SKU_CATALOG[sku_name]
        counter: Counter = Counter()
        for index in range(n):
            machine = common.machine_for(sku, index, seed)
            step1 = common.run_step1(machine)
            row = tuple(step1.os_to_cha[os] for os in sorted(step1.os_to_cha))
            counter[row] += 1
        mappings[sku_name] = counter
    return Table1Result(fleet_size=n, mappings=mappings)
