"""Fig. 6: thermal covert-channel traces at 1/2/3-hop receivers.

One sender transmits the figure's bit pattern; receivers 1, 2 and 3
vertical hops away record their sensors during the *same* transmission.
The report renders the temperature traces (ASCII) and each receiver's
decoded bits — dampened-but-decodable at 1 hop, unstable further out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covert.channel import ChannelConfig
from repro.covert.encoding import manchester_encode
from repro.covert.receiver import detect_bits
from repro.covert.syncdec import synchronize
from repro.experiments import common
from repro.mesh.geometry import TileCoord
from repro.platform.skus import SKU_CATALOG
from repro.core.pipeline import map_cpu

#: The bit pattern visible in Fig. 6.
FIG6_BITS = (1, 0, 1, 0, 0, 0, 0, 1, 1)

_SPARKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: np.ndarray, width: int = 72) -> str:
    if len(values) == 0:
        return ""
    idx = np.linspace(0, len(values) - 1, min(width, len(values))).astype(int)
    sampled = values[idx]
    lo, hi = float(sampled.min()), float(sampled.max())
    if hi - lo < 1e-9:
        return _SPARKS[0] * len(sampled)
    scaled = ((sampled - lo) / (hi - lo) * (len(_SPARKS) - 1)).astype(int)
    return "".join(_SPARKS[v] for v in scaled)


@dataclass
class HopTrace:
    hops: int
    receiver_os: int
    samples: np.ndarray
    decoded: list[int]
    errors: int

    def summary(self) -> str:
        return (
            f"{self.hops}-hop sink (core {self.receiver_os}): "
            f"{self.samples.min():.0f}..{self.samples.max():.0f} C, "
            f"decoded {''.join(map(str, self.decoded))} "
            f"({self.errors} errors)"
        )


@dataclass
class Fig6Result:
    bit_rate: float
    sent_bits: tuple[int, ...]
    source_os: int
    source_temps: np.ndarray
    traces: list[HopTrace]

    def render(self) -> str:
        lines = [
            f"Fig. 6 — inter-core thermal covert channel at {self.bit_rate:g} bps",
            f"sent data: {''.join(map(str, self.sent_bits))}",
            f"source (core {self.source_os}) temp "
            f"{self.source_temps.min():.0f}..{self.source_temps.max():.0f} C:",
            "  " + _sparkline(self.source_temps),
        ]
        for trace in self.traces:
            lines.append(trace.summary())
            lines.append("  " + _sparkline(trace.samples))
        return "\n".join(lines)


def _find_vertical_stack(core_map, depth: int) -> list[int] | None:
    """OS cores stacked vertically: sender plus ``depth`` receivers below."""
    for os_core in sorted(core_map.os_to_cha):
        pos = core_map.position_of_os_core(os_core)
        stack = [os_core]
        for hop in range(1, depth + 1):
            nxt = core_map.os_core_at(TileCoord(pos.row + hop, pos.col))
            if nxt is None:
                break
            stack.append(nxt)
        if len(stack) == depth + 1:
            return stack
    return None


def run(seed: int | None = None, bit_rate: float = 1.0) -> Fig6Result:
    seed = seed if seed is not None else common.root_seed()
    machine = common.machine_for(SKU_CATALOG["8259CL"], 0, seed, with_thermal=True)
    core_map = map_cpu(machine).core_map

    stack = None
    for depth in (3, 2, 1):
        stack = _find_vertical_stack(core_map, depth)
        if stack:
            break
    if stack is None:
        raise RuntimeError("the map offers no vertical core stack at all")
    source, receivers = stack[0], stack[1:]

    config = ChannelConfig(bit_rate=bit_rate)
    frame = manchester_encode(config.warmup + list(config.signature) + list(FIG6_BITS))
    spb = config.samples_per_bit
    dt = config.sample_dt

    machine.thermal.set_timestep(dt)
    source_temps: list[int] = []
    receiver_temps: list[list[int]] = [[] for _ in receivers]
    for level in frame:
        machine.set_core_load(source, float(level))
        for _ in range(spb // 2):
            machine.advance_time(dt)
            source_temps.append(machine.read_core_temp_c(source))
            for buffer, rx in zip(receiver_temps, receivers):
                buffer.append(machine.read_core_temp_c(rx))
    machine.set_core_load(source, 0.0)
    for _ in range(2 * spb):
        machine.advance_time(dt)
        source_temps.append(machine.read_core_temp_c(source))
        for buffer, rx in zip(receiver_temps, receivers):
            buffer.append(machine.read_core_temp_c(rx))

    traces = []
    for hop, (buffer, rx) in enumerate(zip(receiver_temps, receivers), start=1):
        samples = np.asarray(buffer, dtype=float)
        sync = synchronize(
            samples, spb, config.signature, (config.warmup_bits + 1) * spb + spb // 2
        )
        decoded = detect_bits(
            samples, spb, len(FIG6_BITS), sync.offset + len(config.signature) * spb
        )
        errors = sum(1 for a, b in zip(FIG6_BITS, decoded) if a != b)
        traces.append(HopTrace(hop, rx, samples, decoded, errors))

    return Fig6Result(
        bit_rate=bit_rate,
        sent_bits=FIG6_BITS,
        source_os=source,
        source_temps=np.asarray(source_temps, dtype=float),
        traces=traces,
    )
